// Call gates: bind-time resolved crossing entry points.
//
// LXFI resolves a module's imports when the module is loaded and
// routes every crossing through a wrapper compiled for that function
// (§4.2). The simulation's analogue is the Gate: the loader resolves
// each import into a *Gate holding the pre-resolved declaration (whose
// annotation program was compiled at registration), and module code
// calls through the gate with fixed-arity entry points. A gate call
// therefore performs no name lookup, no registry lock, and no argument
// slice allocation — the arguments ride the thread's crossing stack.
//
// Gates do not weaken isolation: the CALL capability check, the
// annotation programs, and the shadow stack still run on every
// mediated crossing exactly as they do for the string-keyed paths
// (CallKernel / IndirectCall), which remain for cold callers, tests,
// and exploit payloads. A gate only removes the per-call resolution
// cost the paper moves to bind time.
package core

import (
	"fmt"
	"sync/atomic"

	"lxfi/internal/mem"
)

// Gate is one bound module→kernel crossing: a pre-resolved kernel
// export. Obtained from Module.Gate at load time. owner is the module
// generation the gate was bound for: once that generation is retired
// by a reload, calling through the gate is a violation under
// enforcement (a stale gate is a dangling pointer into the old
// generation's import table).
type Gate struct {
	fn    *FuncDecl
	owner *Module
}

// guard refuses crossings through a gate whose owning module
// generation has been retired by a reload. During the quiesce drain
// (owner still quiescing) the gate keeps working — in-flight crossings
// must be able to finish. On a stock kernel the stale gate silently
// keeps working, which is exactly the use-after-reload window the
// StaleGateUseAfterReload exploit drives through.
func (g *Gate) guard(t *Thread) error {
	if g.owner == nil || g.owner.lcState.Load() != lcRetired {
		return nil
	}
	if !t.mon.Enforcing() {
		return nil
	}
	return t.violationAt(g.owner, g.owner.Set.Shared(), "stalegate", g.fn.Addr,
		fmt.Sprintf("crossing through stale gate %s of reloaded module %s",
			g.fn.Name, g.owner.Name))
}

// Gate returns the bound gate for one of the module's imports. Gates
// exist exactly for the loader-granted import list; asking for
// anything else is a module programming error and panics loudly at
// bind time (the same stage the real loader would fail relocation).
func (m *Module) Gate(name string) *Gate {
	g, ok := m.gates[name]
	if !ok {
		panic(fmt.Sprintf("core: module %s has no bound gate for %q (not in its import list)", m.Name, name))
	}
	return g
}

// Func returns the gate's resolved declaration.
func (g *Gate) Func() *FuncDecl { return g.fn }

// pushArgs* copy fixed arguments onto the thread's crossing stack and
// return the frame base. Frames nest with crossings; popArgs truncates
// back. The backing array is retained across calls, so steady-state
// crossings push without allocating.

func (t *Thread) popArgs(base int) { t.argStack = t.argStack[:base] }

// Call0 through Call6 are the fixed-arity crossing entry points.

// Call0 invokes the gate with no arguments.
func (g *Gate) Call0(t *Thread) (uint64, error) {
	if err := g.guard(t); err != nil {
		return 0, err
	}
	base := len(t.argStack)
	ret, err := t.callKernelDecl(g.fn, t.argStack[base:])
	t.popArgs(base)
	return ret, err
}

// Call1 invokes the gate with one argument.
func (g *Gate) Call1(t *Thread, a0 uint64) (uint64, error) {
	if err := g.guard(t); err != nil {
		return 0, err
	}
	base := len(t.argStack)
	t.argStack = append(t.argStack, a0)
	ret, err := t.callKernelDecl(g.fn, t.argStack[base:])
	t.popArgs(base)
	return ret, err
}

// Call2 invokes the gate with two arguments.
func (g *Gate) Call2(t *Thread, a0, a1 uint64) (uint64, error) {
	if err := g.guard(t); err != nil {
		return 0, err
	}
	base := len(t.argStack)
	t.argStack = append(t.argStack, a0, a1)
	ret, err := t.callKernelDecl(g.fn, t.argStack[base:])
	t.popArgs(base)
	return ret, err
}

// Call3 invokes the gate with three arguments.
func (g *Gate) Call3(t *Thread, a0, a1, a2 uint64) (uint64, error) {
	if err := g.guard(t); err != nil {
		return 0, err
	}
	base := len(t.argStack)
	t.argStack = append(t.argStack, a0, a1, a2)
	ret, err := t.callKernelDecl(g.fn, t.argStack[base:])
	t.popArgs(base)
	return ret, err
}

// Call4 invokes the gate with four arguments.
func (g *Gate) Call4(t *Thread, a0, a1, a2, a3 uint64) (uint64, error) {
	if err := g.guard(t); err != nil {
		return 0, err
	}
	base := len(t.argStack)
	t.argStack = append(t.argStack, a0, a1, a2, a3)
	ret, err := t.callKernelDecl(g.fn, t.argStack[base:])
	t.popArgs(base)
	return ret, err
}

// Call5 invokes the gate with five arguments.
func (g *Gate) Call5(t *Thread, a0, a1, a2, a3, a4 uint64) (uint64, error) {
	if err := g.guard(t); err != nil {
		return 0, err
	}
	base := len(t.argStack)
	t.argStack = append(t.argStack, a0, a1, a2, a3, a4)
	ret, err := t.callKernelDecl(g.fn, t.argStack[base:])
	t.popArgs(base)
	return ret, err
}

// Call6 invokes the gate with six arguments.
func (g *Gate) Call6(t *Thread, a0, a1, a2, a3, a4, a5 uint64) (uint64, error) {
	if err := g.guard(t); err != nil {
		return 0, err
	}
	base := len(t.argStack)
	t.argStack = append(t.argStack, a0, a1, a2, a3, a4, a5)
	ret, err := t.callKernelDecl(g.fn, t.argStack[base:])
	t.popArgs(base)
	return ret, err
}

// CallArgs invokes the gate with a caller-owned argument slice (for
// arities beyond Call6 or callers with their own scratch).
func (g *Gate) CallArgs(t *Thread, args []uint64) (uint64, error) {
	if err := g.guard(t); err != nil {
		return 0, err
	}
	return t.callKernelDecl(g.fn, args)
}

// IndGate is a bound indirect-call interface: a pre-resolved
// function-pointer type. Kernel substrates bind one per interface slot
// at init (System.BindIndirect) so the per-crossing path never repeats
// the string-keyed type lookup.
//
// Each gate also carries a small direct-mapped (slot → target) cache
// validated against the capability epoch and the enforcement mode
// (calls.go, indirectCallGate): once a slot's full writer-set check
// has passed, repeat crossings through the same unchanged slot skip
// the writer-set probe, the grantee sweep, and the System.mu registry
// lookups. Entries are immutable and swapped atomically, so gates are
// safe to share between threads.
type IndGate struct {
	ft    *FPtrType
	cache [indCacheSlots]atomic.Pointer[indCacheEnt]
}

// indCacheSlots is the per-gate cache size; slots of one interface
// hash by address, so a gate serving a handful of live objects keeps
// them all resident.
const indCacheSlots = 8

// indCacheEnt is one validated (slot → resolved target) binding. All
// fields are written before the entry is published and never mutated.
type indCacheEnt struct {
	slot      mem.Addr
	target    uint64
	epoch     uint64
	enforcing bool
	fn        *FuncDecl
	m         *Module // pre-resolved module for module targets (may be nil)
}

// BindIndirect resolves a registered function-pointer type into an
// indirect-call gate. It panics on an unknown type, exactly as the
// per-call IndirectCall path does — binding just moves the failure to
// init time.
func (s *System) BindIndirect(typeName string) *IndGate {
	ft, ok := s.FPtrType(typeName)
	if !ok {
		panic("core: indirect call through unregistered fptr type " + typeName)
	}
	return &IndGate{ft: ft}
}

// Type returns the gate's resolved function-pointer type.
func (g *IndGate) Type() *FPtrType { return g.ft }

// CallArgs performs the kernel-side checked indirect call through the
// pointer stored at slot (the lxfi_check_indcall path of §4.1) with a
// caller-owned argument slice.
func (g *IndGate) CallArgs(t *Thread, slot mem.Addr, args []uint64) (uint64, error) {
	return t.indirectCallGate(g, slot, args)
}

// Call1 is the one-argument kernel-side checked indirect call.
func (g *IndGate) Call1(t *Thread, slot mem.Addr, a0 uint64) (uint64, error) {
	base := len(t.argStack)
	t.argStack = append(t.argStack, a0)
	ret, err := t.indirectCallGate(g, slot, t.argStack[base:])
	t.popArgs(base)
	return ret, err
}

// Call2 is the two-argument kernel-side checked indirect call.
func (g *IndGate) Call2(t *Thread, slot mem.Addr, a0, a1 uint64) (uint64, error) {
	base := len(t.argStack)
	t.argStack = append(t.argStack, a0, a1)
	ret, err := t.indirectCallGate(g, slot, t.argStack[base:])
	t.popArgs(base)
	return ret, err
}

// Call3 is the three-argument kernel-side checked indirect call.
func (g *IndGate) Call3(t *Thread, slot mem.Addr, a0, a1, a2 uint64) (uint64, error) {
	base := len(t.argStack)
	t.argStack = append(t.argStack, a0, a1, a2)
	ret, err := t.indirectCallGate(g, slot, t.argStack[base:])
	t.popArgs(base)
	return ret, err
}

// Call4 is the four-argument kernel-side checked indirect call.
func (g *IndGate) Call4(t *Thread, slot mem.Addr, a0, a1, a2, a3 uint64) (uint64, error) {
	base := len(t.argStack)
	t.argStack = append(t.argStack, a0, a1, a2, a3)
	ret, err := t.indirectCallGate(g, slot, t.argStack[base:])
	t.popArgs(base)
	return ret, err
}

// CallAddrArgs is the module-side indirect call through the gate's
// interface type: module code invoking a function pointer value it
// holds (e.g. a kernel-provided callback), with the CALL capability
// and annotation-hash checks of Thread.CallAddr.
func (g *IndGate) CallAddrArgs(t *Thread, target mem.Addr, args []uint64) (uint64, error) {
	return t.callAddrFT(target, g.ft, args)
}

// CallAddr1 is the one-argument module-side indirect call.
func (g *IndGate) CallAddr1(t *Thread, target mem.Addr, a0 uint64) (uint64, error) {
	base := len(t.argStack)
	t.argStack = append(t.argStack, a0)
	ret, err := t.callAddrFT(target, g.ft, t.argStack[base:])
	t.popArgs(base)
	return ret, err
}

// CallAddr2 is the two-argument module-side indirect call.
func (g *IndGate) CallAddr2(t *Thread, target mem.Addr, a0, a1 uint64) (uint64, error) {
	base := len(t.argStack)
	t.argStack = append(t.argStack, a0, a1)
	ret, err := t.callAddrFT(target, g.ft, t.argStack[base:])
	t.popArgs(base)
	return ret, err
}

// Hot module reload, the runtime half (the policy half — descriptor
// lookup, substrate unhooking, capability migration — lives in
// internal/modules).
//
// A reload replaces a module generation in place:
//
//  1. BeginReload flips the module to quiescing. New crossings park at
//     the gate (enterModule blocks on the wake channel); in-flight
//     crossings — visible as the active counter the entry protocol
//     maintains alongside the shadow stack — drain.
//  2. The caller snapshots capabilities, unhooks substrates, and calls
//     RetireModule: the name is freed for the successor and the old
//     generation's capabilities are revoked (epoch bump), but its
//     function registrations stay resolvable so stale function-pointer
//     slots still dispatch.
//  3. After the fresh generation loads, CompleteReload publishes it as
//     the successor and retires the old one. Parked crossings wake and
//     re-bind to the successor's declaration of the same name; direct
//     use of a retired generation's Gate is a violation under
//     enforcement (gate.go).
//
// The bind-time gate architecture (PR 5) is what makes this tractable:
// every crossing enters through a small number of choke points
// (callModuleDeclParams for inbound, Gate/IndGate for outbound), so
// quiescing the module means parking exactly those.
package core

import (
	"fmt"
	"runtime"
	"time"
)

// Module lifecycle states.
const (
	lcLive int32 = iota
	lcQuiescing
	lcRetired
)

// insideModule reports whether the thread is currently executing in m
// or has m anywhere on its shadow stack. Such a thread must not park
// at m's gate during a quiesce: it is part of the drain the quiescer
// is waiting for, and blocking it would deadlock the reload
// (module → kernel → module callback re-entry).
func (t *Thread) insideModule(m *Module) bool {
	if t.curMod == m {
		return true
	}
	for i := len(t.shadow) - 1; i >= 0; i-- {
		if t.shadow[i].savedMod == m {
			return true
		}
	}
	return false
}

// enterModule is the crossing entry protocol: it registers the
// crossing in m's active counter and resolves which module generation
// (and which declaration) actually runs. On success the active count
// of the returned module has been incremented; the caller must
// decrement it when the crossing returns.
//
// The increment-then-check order is what makes the quiesce race-free:
// a crossing that observed the live state has already published itself
// in active, so the quiescer's active==0 read cannot miss it.
func (t *Thread) enterModule(m *Module, fn *FuncDecl, params []Param, substituted bool) (*Module, *FuncDecl, []Param, bool, error) {
	for {
		m.active.Add(1)
		state := m.lcState.Load()
		if state == lcLive {
			break
		}
		m.active.Add(-1)
		if state == lcQuiescing {
			if t.insideModule(m) {
				// Re-entrant crossing from inside the draining module:
				// it belongs to the drain itself and must proceed.
				m.active.Add(1)
				break
			}
			// Park until the reload transitions the module (complete or
			// abort). The channel is loaded before the state re-check:
			// a transition after the load closes exactly this channel.
			ch := m.lcWake.Load()
			if m.lcState.Load() == lcQuiescing && ch != nil {
				<-*ch
			}
			continue
		}
		// Retired: follow the successor chain.
		succ := m.successor.Load()
		if succ == nil {
			return nil, nil, nil, false, fmt.Errorf("%w (%s: reload failed)", ErrModuleDead, m.Name)
		}
		m = succ
	}
	// The generation check: a declaration owned by an earlier generation
	// (a stale function-pointer slot, or a by-name dispatch that raced a
	// reload) is re-bound to the entered generation's declaration of the
	// same name.
	if fn.owner != nil && fn.owner != m {
		nf, ok := m.Funcs[fn.Name]
		if !ok {
			m.active.Add(-1)
			return nil, nil, nil, false, fmt.Errorf(
				"core: reload of %s removed function %q", m.Name, fn.Name)
		}
		// Keep the slot type's substituted parameters only if the fresh
		// declaration also carries none.
		if !substituted || len(nf.Params) != 0 {
			params, substituted = nf.Params, false
		}
		fn = nf
	}
	return m, fn, params, substituted, nil
}

// BeginReload quiesces module m: new crossings park at the gate while
// in-flight crossings drain. On success the module is left quiescing
// with zero crossings inside it; the caller must finish with
// CompleteReload, FailReload, or AbortReload (all of which wake parked
// crossings). A drain that exceeds timeout aborts the quiesce and
// returns the module to live.
func (s *System) BeginReload(m *Module, timeout time.Duration) error {
	if !m.lcState.CompareAndSwap(lcLive, lcQuiescing) {
		return fmt.Errorf("core: module %s is not live (concurrent reload?)", m.Name)
	}
	deadline := time.Now().Add(timeout)
	for m.active.Load() != 0 {
		if time.Now().After(deadline) {
			n := m.active.Load()
			m.lcTransition(lcLive)
			return fmt.Errorf("core: module %s: quiesce timed out with %d crossings in flight",
				m.Name, n)
		}
		runtime.Gosched()
	}
	return nil
}

// RetireModule unpublishes a quiesced module: the name is freed for
// the successor and the generation's capabilities are revoked (the
// epoch bump invalidates every per-thread check cache and IndGate slot
// cache), but — unlike UnloadModule — its function registrations stay
// in the address registry so stale function-pointer slots still
// resolve and can be redirected through the successor. Lock order:
// core.System.mu before the caps locks, as in LoadModule/UnloadModule.
func (s *System) RetireModule(m *Module) {
	s.mu.Lock()
	if cur, ok := s.modules[m.Name]; ok && cur == m {
		delete(s.modules, m.Name)
	}
	s.Caps.UnloadModule(m.Name)
	s.mu.Unlock()
}

// CompleteReload publishes succ as m's successor and retires m,
// waking every crossing parked at m's gate (each re-binds to succ).
func (s *System) CompleteReload(m, succ *Module) {
	m.successor.Store(succ)
	m.lcTransition(lcRetired)
}

// FailReload retires m with no successor: the fresh generation failed
// to load after the old one was already unhooked, so the module is
// gone — parked and future crossings fail with ErrModuleDead.
func (s *System) FailReload(m *Module) {
	m.lcTransition(lcRetired)
}

// AbortReload returns a quiescing module to live (the reload was
// abandoned before the module was retired).
func (s *System) AbortReload(m *Module) {
	m.lcTransition(lcLive)
}

package core

import (
	"lxfi/internal/caps"
	"lxfi/internal/mem"
)

// Per-thread capability check cache.
//
// The paper's per-CPU context makes capability checks the dominant
// crossing cost; the simulation's sharded tables still pay a shard read
// lock and an O(log n) interval probe per check. Threads, however,
// repeat the same few checks (the same spinlock word, the same page,
// the same CALL target) between capability mutations, so each
// core.Thread keeps a small direct-mapped cache of recent
// (principal, kind, addr, size) → verdict entries.
//
// Soundness comes from the capability epoch: every entry records the
// value of caps.System.Epoch read *before* the authoritative check ran,
// and a lookup only trusts an entry whose epoch still matches the
// current one. Every grant, revoke, transfer revocation, module
// load/unload, and DropInstance bumps the epoch, so a revoked WRITE can
// never be served from cache — at worst the cache misses and the
// sharded tables answer. A Thread is confined to one goroutine, so the
// cache itself needs no locking; the only shared word on a hit is the
// epoch's atomic load.

// checkCacheSize is the number of direct-mapped entries per thread.
const checkCacheSize = 64

// checkCacheEntry is one 32-byte direct-mapped slot. The capability's
// kind is packed into the size's top byte and the verdict into the
// epoch's low bit, so a hit loads and compares exactly four words.
// WRITE and CALL verdicts pack (size | kind) into sizeKind; REF
// verdicts pack an interned type ID instead of carrying the type
// string (checkCapTag), so all three kinds fit the same entry. The
// generic checkCap path still treats REF as uncacheable — only the
// compiled action programs, which pre-intern their tags at bind time,
// store and probe REF entries.
type checkCacheEntry struct {
	prin         *caps.Principal
	addr         mem.Addr
	sizeKind     uint64 // c.Size | kind<<sizeKindShift (size < 2^56 only)
	epochVerdict uint64 // epoch<<1 | verdict
}

// sizeKindShift positions the kind tag above any cacheable size. A size
// with bits at or above the shift skips the cache entirely, so a forged
// huge-size WRITE probe can never alias a cached CALL verdict.
const sizeKindShift = 56

// cacheSlot derives the direct-mapped slot for an address. Principal
// identity and the packed size/kind are verified on lookup, so neither
// needs to participate in the index; mixing two address strides keeps
// neighboring words and neighboring pages from colliding.
func cacheSlot(a uint64) int {
	return int((a>>3 ^ a>>9) & (checkCacheSize - 1))
}

// cacheable reports whether a capability's verdict may live in the
// per-thread cache.
func cacheable(c caps.Cap) bool {
	return c.Kind != caps.Ref && c.Size>>sizeKindShift == 0
}

// packSizeKind builds the entry's packed size/kind tag. Only valid for
// cacheable capabilities (size below the shift).
func packSizeKind(c caps.Cap) uint64 {
	return c.Size | uint64(c.Kind)<<sizeKindShift
}

// statsFlushBatch bounds how many checks a thread tallies locally
// before folding them into the shared atomic counters. A cached hit
// must not pay a shared-cache-line atomic per check; the counters are
// also flushed at every wrapper exit, so crossing-grained readers
// (netperf's guard breakdown) still see exact numbers.
const statsFlushBatch = 4096

// flushCheckStats folds the thread-local check tallies into the shared
// monitor counters.
func (t *Thread) flushCheckStats() {
	if t.pendChecks != 0 {
		t.Sys.Mon.Stats.CapChecks.Add(t.pendChecks)
		if hits := t.pendChecks - t.pendMisses; hits != 0 {
			t.Sys.Mon.Stats.CapCacheHits.Add(hits)
		}
		t.lifeChecks += t.pendChecks
		t.lifeMisses += t.pendMisses
		t.pendChecks, t.pendMisses = 0, 0
	}
	if t.pendMemWrites != 0 {
		t.Sys.Mon.Stats.MemWriteChecks.Add(t.pendMemWrites)
		t.pendMemWrites = 0
	}
}

// checkCap is the mediated-path capability check: cache first, sharded
// tables on a miss. All enforcement guards (memory writes, CALL checks,
// annotation ownership checks, lxfi_check) funnel through here. The
// body is kept small enough to inline into the guards; everything not
// on the hit path lives in checkCapSlow.
func (t *Thread) checkCap(p *caps.Principal, c caps.Cap) bool {
	if p != nil && c.Size>>sizeKindShift == 0 {
		if v, hit := t.cacheProbe(p, c.Addr, packSizeKind(c), t.csys.Epoch()); hit {
			t.pendChecks++
			return v
		}
	}
	return t.checkCapSlow(p, c)
}

// cacheProbe is the inlinable cache lookup the guards embed directly:
// (verdict, true) on an epoch-valid hit, (_, false) otherwise.
//
// Callers must guarantee p != nil (a zero entry would otherwise match a
// kernel-context check) and size < 2^sizeKindShift (an oversized probe
// could otherwise alias a stored entry's packed kind tag); trusted
// principals are never stored, and a REF probe's tag can never equal a
// stored WRITE/CALL tag.
func (t *Thread) cacheProbe(p *caps.Principal, addr mem.Addr, sizeKind, ep uint64) (bool, bool) {
	e := &t.ccache[cacheSlot(uint64(addr))]
	if e.prin == p && e.addr == addr && e.sizeKind == sizeKind && e.epochVerdict>>1 == ep {
		return e.epochVerdict&1 != 0, true
	}
	return false, false
}

// checkCapTag is checkCap with a caller-supplied packed cache tag; the
// compiled action programs use it to cache REF verdicts, whose tag
// (an interned type ID | Ref kind bits, see System.refTypeTag) cannot
// be derived from the Cap alone. Tag uniqueness is the caller's
// contract: equal tags must imply equal (kind, type, size) identity,
// which interning guarantees. Epoch validation is unchanged, so a
// revoked REF is never served stale.
func (t *Thread) checkCapTag(p *caps.Principal, c caps.Cap, tag uint64) bool {
	if p != nil {
		if v, hit := t.cacheProbe(p, c.Addr, tag, t.csys.Epoch()); hit {
			t.pendChecks++
			return v
		}
	}
	return t.checkCapMiss(p, c, tag, true)
}

// checkCapSlow handles kernel/trusted principals, cache misses, and the
// batched stats flush.
func (t *Thread) checkCapSlow(p *caps.Principal, c caps.Cap) bool {
	if cacheable(c) {
		return t.checkCapMiss(p, c, packSizeKind(c), true)
	}
	return t.checkCapMiss(p, c, 0, false)
}

// checkCapMiss is the shared miss path behind checkCapSlow and
// checkCapTag: batched stats, the trusted short-circuit, the
// authoritative table check, and (when store is set) the cache fill
// under the caller's packed tag. Cache hits are derived at flush time
// as checks minus misses, so the hit paths pay a single thread-local
// increment.
func (t *Thread) checkCapMiss(p *caps.Principal, c caps.Cap, tag uint64, store bool) bool {
	t.pendChecks++
	t.pendMisses++
	if t.pendChecks >= statsFlushBatch {
		t.flushCheckStats()
	}
	if p == nil || p.IsTrusted() {
		return true
	}
	// The epoch is read before the authoritative check: a mutation that
	// lands between the read and the check stamps the entry with an
	// already-stale epoch, so the next lookup revalidates rather than
	// trusting a verdict of unknown vintage.
	ep := t.csys.Epoch()
	v := t.csys.Check(p, c)
	if store {
		e := &t.ccache[cacheSlot(uint64(c.Addr))]
		e.prin, e.addr = p, c.Addr
		e.sizeKind = tag
		ev := ep << 1
		if v {
			ev |= 1
		}
		e.epochVerdict = ev
	}
	return v
}

// CheckCached exposes the thread's cached check for kernel-side callers
// that repeat capability probes on the hot path (the VFS rename
// re-check, the crossing microbenchmark). Semantics are identical to
// caps.System.Check.
func (t *Thread) CheckCached(p *caps.Principal, c caps.Cap) bool {
	return t.checkCap(p, c)
}

// --- crossing scratch pools ---
//
// The wrapper paths of calls.go burn one argEnv and a couple of
// capability slices per mediated crossing. Both are recycled through
// per-thread free lists (a Thread is goroutine-confined, so these are
// lock-free): with a warm cache a crossing performs no allocation.

// getEnv returns a recycled argEnv bound to this call's parameters.
func (t *Thread) getEnv(params []Param, args []uint64) *argEnv {
	n := len(t.envFree)
	if n == 0 {
		return &argEnv{sys: t.Sys, params: params, args: args}
	}
	e := t.envFree[n-1]
	t.envFree = t.envFree[:n-1]
	e.params, e.args, e.ret, e.hasRet = params, args, 0, false
	return e
}

// putEnv returns an argEnv to the thread's free list.
func (t *Thread) putEnv(e *argEnv) {
	if e == nil {
		return
	}
	e.params, e.args = nil, nil
	t.envFree = append(t.envFree, e)
}

// getCapBuf returns an empty capability scratch slice.
func (t *Thread) getCapBuf() []caps.Cap {
	n := len(t.capFree)
	if n == 0 {
		return make([]caps.Cap, 0, 4)
	}
	buf := t.capFree[n-1]
	t.capFree = t.capFree[:n-1]
	return buf[:0]
}

// putCapBuf recycles a capability scratch slice.
func (t *Thread) putCapBuf(buf []caps.Cap) {
	if buf == nil {
		return
	}
	t.capFree = append(t.capFree, buf[:0])
}

package core_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"lxfi/internal/core"
)

// reloadFixture loads generation v1 of a module, quiesces it, and
// swaps in generation v2 under the same name, returning both.
func reloadSwap(tb testing.TB, f *fixture, imports []string, v1, v2 core.Impl) (old, fresh *core.Module) {
	tb.Helper()
	old = f.loadModule(tb, "m", imports, v1)
	if err := f.sys.BeginReload(old, time.Second); err != nil {
		tb.Fatal(err)
	}
	f.sys.RetireModule(old)
	fresh = f.loadModule(tb, "m", imports, v2)
	f.sys.CompleteReload(old, fresh)
	return old, fresh
}

// A crossing dispatched against the retired generation — a stale
// function pointer, a by-name call that raced the reload — must land in
// the successor's declaration, not the old closure.
func TestReloadRedirectsStaleDispatch(t *testing.T) {
	f := newFixture(t, core.Enforce)
	old, _ := reloadSwap(t, f, nil,
		func(th *core.Thread, args []uint64) uint64 { return 1 },
		func(th *core.Thread, args []uint64) uint64 { return 2 })

	ret, err := f.t.CallModule(old, "run", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 2 {
		t.Fatalf("stale dispatch ran generation returning %d, want successor's 2", ret)
	}
}

// New crossings arriving while the module quiesces park at the gate and
// complete against the successor — no crossing is dropped.
func TestReloadParksNewCrossings(t *testing.T) {
	f := newFixture(t, core.Enforce)
	inV1 := make(chan struct{})
	release := make(chan struct{})
	old := f.loadModule(t, "m", nil, func(th *core.Thread, args []uint64) uint64 {
		close(inV1)
		<-release
		return 1
	})

	// An in-flight crossing holds the module busy.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := f.sys.NewThread("inflight")
		if ret, err := th.CallModule(old, "run", 0); err != nil || ret != 1 {
			t.Errorf("in-flight crossing: ret=%d err=%v", ret, err)
		}
	}()
	<-inV1

	quiesced := make(chan error, 1)
	go func() { quiesced <- f.sys.BeginReload(old, 5*time.Second) }()
	for !old.Quiescing() {
		time.Sleep(time.Millisecond)
	}

	// A crossing arriving mid-quiesce must park, not fail.
	parked := make(chan uint64, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := f.sys.NewThread("parked")
		ret, err := th.CallModule(old, "run", 0)
		if err != nil {
			t.Errorf("parked crossing: %v", err)
		}
		parked <- ret
	}()

	select {
	case <-parked:
		t.Fatal("crossing completed against a quiescing module")
	case <-time.After(20 * time.Millisecond):
	}

	close(release) // drain the in-flight crossing
	if err := <-quiesced; err != nil {
		t.Fatal(err)
	}
	f.sys.RetireModule(old)
	fresh := f.loadModule(t, "m", nil, func(th *core.Thread, args []uint64) uint64 { return 2 })
	f.sys.CompleteReload(old, fresh)

	if ret := <-parked; ret != 2 {
		t.Fatalf("parked crossing ran generation returning %d, want successor's 2", ret)
	}
	wg.Wait()
}

// A quiesce that cannot drain aborts cleanly: the module returns to
// live and keeps serving crossings.
func TestReloadQuiesceTimeoutAborts(t *testing.T) {
	f := newFixture(t, core.Enforce)
	entered := make(chan struct{})
	release := make(chan struct{})
	m := f.loadModule(t, "m", nil, func(th *core.Thread, args []uint64) uint64 {
		select {
		case entered <- struct{}{}:
			<-release
		default:
		}
		return 7
	})
	go func() {
		th := f.sys.NewThread("hung")
		_, _ = th.CallModule(m, "run", 0)
	}()
	<-entered

	if err := f.sys.BeginReload(m, 10*time.Millisecond); err == nil {
		t.Fatal("quiesce should time out with a crossing in flight")
	}
	close(release)
	if m.Quiescing() || m.Retired() {
		t.Fatal("aborted quiesce left the module non-live")
	}
	if ret, err := f.t.CallModule(m, "run", 0); err != nil || ret != 7 {
		t.Fatalf("module dead after aborted quiesce: ret=%d err=%v", ret, err)
	}
}

// A gate bound by the retired generation is a dangling import-table
// pointer: crossing through it is a violation under enforcement, but
// lands silently on a stock kernel (the exploit window).
func TestStaleGateBlockedUnderEnforcement(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		f := newFixture(t, mode)
		var stale *core.Gate
		v1 := func(th *core.Thread, args []uint64) uint64 {
			stale = th.CurrentModule().Gate("printk")
			return 0
		}
		v2 := func(th *core.Thread, args []uint64) uint64 { return 0 }
		old := f.loadModule(t, "m", []string{"printk"}, v1)
		if _, err := f.t.CallModule(old, "run", 0); err != nil {
			t.Fatal(err)
		}
		if err := f.sys.BeginReload(old, time.Second); err != nil {
			t.Fatal(err)
		}
		f.sys.RetireModule(old)
		fresh := f.loadModule(t, "m", []string{"printk"}, v2)
		f.sys.CompleteReload(old, fresh)

		_, err := stale.Call1(f.t, 0)
		if mode == core.Enforce {
			if !errors.Is(err, core.ErrViolation) {
				t.Fatalf("stale gate crossing not flagged under enforcement: %v", err)
			}
		} else if err != nil {
			t.Fatalf("stale gate crossing should land on stock: %v", err)
		}
	}
}

// A reload whose fresh generation fails to load leaves the module dead:
// parked and future crossings fail with ErrModuleDead instead of
// hanging.
func TestFailedReloadKillsModule(t *testing.T) {
	f := newFixture(t, core.Enforce)
	old := f.loadModule(t, "m", nil, func(th *core.Thread, args []uint64) uint64 { return 1 })
	if err := f.sys.BeginReload(old, time.Second); err != nil {
		t.Fatal(err)
	}
	f.sys.RetireModule(old)
	f.sys.FailReload(old)

	if _, err := f.t.CallModule(old, "run", 0); !errors.Is(err, core.ErrModuleDead) {
		t.Fatalf("crossing into failed-reload module: %v, want ErrModuleDead", err)
	}
}

// Chained reloads: a dispatch against generation 1 follows the
// successor chain to the newest generation.
func TestReloadSuccessorChain(t *testing.T) {
	f := newFixture(t, core.Enforce)
	g1, g2 := reloadSwap(t, f, nil,
		func(th *core.Thread, args []uint64) uint64 { return 1 },
		func(th *core.Thread, args []uint64) uint64 { return 2 })
	if err := f.sys.BeginReload(g2, time.Second); err != nil {
		t.Fatal(err)
	}
	f.sys.RetireModule(g2)
	g3 := f.loadModule(t, "m", nil, func(th *core.Thread, args []uint64) uint64 { return 3 })
	f.sys.CompleteReload(g2, g3)

	ret, err := f.t.CallModule(g1, "run", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 3 {
		t.Fatalf("chained dispatch returned %d, want newest generation's 3", ret)
	}
}

package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"lxfi/internal/annot"
	"lxfi/internal/caps"
	"lxfi/internal/layout"
	"lxfi/internal/mem"
	"lxfi/internal/trace"
	"lxfi/internal/wst"
)

// IterFunc is a programmer-supplied capability iterator (§3.3), such as
// skb_caps in Fig. 4. It enumerates the capabilities that make up a
// composite object by calling emit for each one; the runtime applies the
// current action (copy/transfer/check) to every emitted capability, the
// role lxfi_cap_iterate plays in the paper.
type IterFunc func(t *Thread, args []int64, emit func(caps.Cap) error) error

// System is the whole simulated machine: address space, allocators,
// capability state, function registry, and the LXFI monitor.
//
// Concurrency: threads created with NewThread/Spawn run on their own
// goroutines. The registries below (functions, fptr types, iterators,
// constants, modules) are guarded by mu — registration mostly happens at
// boot and module load, lookups happen on every mediated call. mu is
// never held across a call into module or kernel function bodies, nor
// across the caps/wst/mem locks (see the lock-order note in
// internal/caps).
type System struct {
	AS      *mem.AddressSpace
	Slab    *mem.Slab
	Statics *mem.Bump // static core-kernel objects
	User    *mem.Bump // user-space mappings
	Caps    *caps.System
	WST     *wst.Tracker
	Layouts *layout.Registry
	Mon     *Monitor

	mu          sync.RWMutex // guards the registries below
	funcsByAddr map[mem.Addr]*FuncDecl
	funcsByName map[string]*FuncDecl // kernel exports and user functions
	fptrTypes   map[string]*FPtrType
	iterators   map[string]IterFunc
	consts      map[string]int64
	modules     map[string]*Module

	kernelText *mem.Bump
	moduleArea *mem.Bump
	userText   *mem.Bump

	// refMu/refIDs intern REF type names into the nonzero IDs that the
	// compiled action programs pack into check-cache tags (program.go).
	refMu  sync.Mutex
	refIDs map[string]uint64

	nextToken atomic.Uint64 // shadow-stack return tokens

	// constsFrozen flips at the first LoadModule and never clears: from
	// then on the constant table is append-only (RegisterConst panics on
	// a rebind to a different value), which is what lets the bind-time
	// compiler fold constants into action programs as literals
	// (program.go) instead of re-resolving them on every crossing.
	constsFrozen atomic.Bool

	// tracing makes NewThread attach a flight-recorder ring to every
	// thread created after EnableTracing (trace.go).
	tracing atomic.Bool

	// supSource, when set (SetSupervisorMetrics), contributes the module
	// supervisor's recovery counters to Metrics(). A pointer-to-func so
	// the registration itself is atomic against concurrent snapshots.
	supSource atomic.Pointer[func() *SupervisorMetrics]
}

// SetSupervisorMetrics registers (or, with nil, removes) the source of
// the supervisor slice of the metrics registry. internal/modules calls
// it when a Supervisor starts.
func (s *System) SetSupervisorMetrics(fn func() *SupervisorMetrics) {
	if fn == nil {
		s.supSource.Store(nil)
		return
	}
	s.supSource.Store(&fn)
}

// NewSystem boots an empty simulated machine with LXFI off.
func NewSystem() *System {
	as := mem.NewAddressSpace()
	s := &System{
		AS:          as,
		Slab:        mem.NewSlab(as, mem.KernelHeap),
		Statics:     mem.NewBump(as, mem.KernelHeap+0x1000_0000),
		User:        mem.NewBump(as, mem.UserHeap),
		Caps:        caps.NewSystem(),
		WST:         wst.New(),
		Layouts:     layout.NewRegistry(),
		Mon:         NewMonitor(),
		funcsByAddr: make(map[mem.Addr]*FuncDecl),
		funcsByName: make(map[string]*FuncDecl),
		fptrTypes:   make(map[string]*FPtrType),
		iterators:   make(map[string]IterFunc),
		consts:      make(map[string]int64),
		modules:     make(map[string]*Module),
		kernelText:  mem.NewBump(as, mem.KernelText),
		moduleArea:  mem.NewBump(as, mem.ModuleText),
		userText:    mem.NewBump(as, mem.UserText),
	}
	return s
}

// --- registration ---

// funcSlotSize is the fake text footprint of one simulated function.
const funcSlotSize = 16

func (s *System) registerFunc(f *FuncDecl, text *mem.Bump) *FuncDecl {
	f.Addr = text.Alloc(funcSlotSize, funcSlotSize)
	s.mu.Lock()
	s.funcsByAddr[f.Addr] = f
	s.mu.Unlock()
	return f
}

// RegisterKernelFunc registers a core-kernel export. annotSrc is parsed
// with annot.Parse; pass the empty string for functions whose contract
// requires nothing beyond the CALL capability.
func (s *System) RegisterKernelFunc(name string, params []Param, annotSrc string, impl Impl) *FuncDecl {
	set, err := annot.Parse(annotSrc)
	if err != nil {
		panic(fmt.Sprintf("core: bad annotation for %s: %v", name, err))
	}
	s.validateAnnot(name, params, set)
	f := &FuncDecl{Name: name, Params: params, Annot: set, Impl: impl}
	f.prog = s.compileAnnot(params, set)
	s.registerFunc(f, s.kernelText)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.funcsByName[name]; dup {
		panic("core: duplicate kernel function " + name)
	}
	s.funcsByName[name] = f
	return f
}

// RegisterUnannotatedKernelFunc registers a kernel function that the
// developer forgot to annotate. Per §2.2's safe default, modules cannot
// invoke it even if they somehow obtain a CALL capability.
func (s *System) RegisterUnannotatedKernelFunc(name string, params []Param, impl Impl) *FuncDecl {
	f := &FuncDecl{Name: name, Params: params, Annot: nil, Impl: impl}
	s.registerFunc(f, s.kernelText)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.funcsByName[name]; dup {
		panic("core: duplicate kernel function " + name)
	}
	s.funcsByName[name] = f
	return f
}

// RegisterUserFunc registers attacker-controlled user-space code at a
// user address. If the kernel is ever tricked into calling it, the
// attacker's payload runs with full kernel privilege (a *Thread in
// kernel context) — the privilege-escalation end state of every exploit
// in §8.1.
func (s *System) RegisterUserFunc(name string, impl Impl) *FuncDecl {
	f := &FuncDecl{Name: name, Module: "user", Impl: impl}
	s.registerFunc(f, s.userText)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.funcsByName[name] = f
	return f
}

// RegisterUserFuncAt registers user code at a specific address (e.g.
// page zero for NULL-page mapping exploits).
func (s *System) RegisterUserFuncAt(name string, addr mem.Addr, impl Impl) *FuncDecl {
	f := &FuncDecl{Name: name, Module: "user", Impl: impl, Addr: addr}
	s.AS.Map(addr, funcSlotSize)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.funcsByAddr[addr] = f
	s.funcsByName[name] = f
	return f
}

// RegisterFPtrType registers an annotated function-pointer type.
func (s *System) RegisterFPtrType(name string, params []Param, annotSrc string) *FPtrType {
	set, err := annot.Parse(annotSrc)
	if err != nil {
		panic(fmt.Sprintf("core: bad annotation for fptr type %s: %v", name, err))
	}
	s.validateAnnot(name, params, set)
	ft := &FPtrType{Name: name, Params: params, Annot: set}
	ft.prog = s.compileAnnot(params, set)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.fptrTypes[name]; dup {
		panic("core: duplicate fptr type " + name)
	}
	s.fptrTypes[name] = ft
	return ft
}

// RegisterIterator registers a capability iterator under the name used
// in annotation sources.
func (s *System) RegisterIterator(name string, fn IterFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.iterators[name]; dup {
		panic("core: duplicate iterator " + name)
	}
	s.iterators[name] = fn
}

// RegisterConst makes a symbolic constant (e.g. NETDEV_TX_BUSY)
// available to annotation expressions. Before the first module load the
// table is fully mutable; after it freezes (LoadModule), rebinding a
// name to a different value panics — compiled action programs may have
// folded the old value into their opcode streams, so a silent rebind
// would split the two evaluators. Registering new names, or re-stating
// an existing binding, stays legal at any time.
func (s *System) RegisterConst(name string, v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.constsFrozen.Load() {
		if old, ok := s.consts[name]; ok && old != v {
			panic(fmt.Sprintf(
				"core: constant %s rebound from %d to %d after the table froze at first module load",
				name, old, v))
		}
	}
	s.consts[name] = v
}

// Const returns a registered constant.
func (s *System) Const(name string) (int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.consts[name]
	return v, ok
}

// validateAnnot rejects annotations that reference identifiers that are
// neither parameters, "return", nor registered constants/iterator names.
// (Constants may be registered later, so only obvious typos — empty
// parameter lists with argument references — are caught eagerly.)
func (s *System) validateAnnot(what string, params []Param, set *annot.Set) {
	if set.Empty() {
		return
	}
	known := map[string]bool{"return": true}
	for _, p := range params {
		known[p.Name] = true
	}
	for _, id := range set.Idents() {
		if !known[id] {
			// Might be a constant registered later; allow names that look
			// like constants (contain an upper-case letter).
			if strings.ToLower(id) != id {
				continue
			}
			panic(fmt.Sprintf("core: annotation for %s references unknown identifier %q", what, id))
		}
	}
}

// --- lookup ---

// FuncByName returns a registered kernel or user function.
func (s *System) FuncByName(name string) (*FuncDecl, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.funcsByName[name]
	return f, ok
}

// FuncByAddr returns the function at a text address.
func (s *System) FuncByAddr(addr mem.Addr) (*FuncDecl, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.funcsByAddr[addr]
	return f, ok
}

// iterator returns a registered capability iterator.
func (s *System) iterator(name string) (IterFunc, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fn, ok := s.iterators[name]
	return fn, ok
}

// FPtrType returns a registered function-pointer type.
func (s *System) FPtrType(name string) (*FPtrType, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.fptrTypes[name]
	return t, ok
}

// FPtrTypes returns a snapshot of all registered function-pointer types.
func (s *System) FPtrTypes() map[string]*FPtrType {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]*FPtrType, len(s.fptrTypes))
	for n, t := range s.fptrTypes {
		out[n] = t
	}
	return out
}

// KernelFuncs returns all registered core-kernel functions by name.
func (s *System) KernelFuncs() map[string]*FuncDecl {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]*FuncDecl)
	for n, f := range s.funcsByName {
		if f.IsKernel() {
			out[n] = f
		}
	}
	return out
}

// Module returns a loaded module. A name mid-load (reserved but not
// yet published) reads as absent.
func (s *System) Module(name string) (*Module, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.modules[name]
	return m, ok && m != nil
}

// Modules returns a snapshot of all loaded modules.
func (s *System) Modules() map[string]*Module {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]*Module, len(s.modules))
	for n, m := range s.modules {
		if m != nil {
			out[n] = m
		}
	}
	return out
}

// --- module loading (§4.2 "Module initialization") ---

// LoadModule loads a module: it allocates text and data, performs
// annotation propagation from function-pointer types, and grants the
// initial capabilities — CALL capabilities for every import and a WRITE
// capability for the writable sections, all to the module's shared
// principal.
func (s *System) LoadModule(spec ModuleSpec) (*Module, error) {
	// The first module load freezes the constant table (RegisterConst):
	// the programs compiled below fold constants as literals, which is
	// sound only if no later registration can rebind them.
	s.constsFrozen.Store(true)
	// Reserve the name atomically: two concurrent loads of one name must
	// not both pass the duplicate check and then fight over the registry
	// slot. The nil placeholder is invisible to lookups (Module treats it
	// as absent) and is replaced or deleted before LoadModule returns.
	s.mu.Lock()
	if _, dup := s.modules[spec.Name]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: module %s already loaded", spec.Name)
	}
	s.modules[spec.Name] = nil
	s.mu.Unlock()
	unreserve := func() {
		s.mu.Lock()
		delete(s.modules, spec.Name)
		s.mu.Unlock()
	}
	m := &Module{
		Name:       spec.Name,
		Set:        s.Caps.LoadModule(spec.Name),
		Funcs:      make(map[string]*FuncDecl),
		Imports:    append([]string(nil), spec.Imports...),
		FuncTypes:  make(map[string]string),
		DataSize:   spec.DataSize,
		RODataSize: spec.RODataSize,
	}
	wake := make(chan struct{})
	m.lcWake.Store(&wake)

	// Register module functions, propagating annotations from fptr types
	// (§4.2): a function assigned to an annotated function-pointer member
	// inherits that member's annotations; if the function also carries
	// explicit annotations they must match exactly.
	for _, fs := range spec.Funcs {
		var set *annot.Set
		if fs.Type != "" {
			ft, ok := s.FPtrType(fs.Type)
			if !ok {
				unreserve()
				return nil, fmt.Errorf("core: module %s: function %s references unknown fptr type %q",
					spec.Name, fs.Name, fs.Type)
			}
			set = ft.Annot
			if fs.Annot != "" {
				own, err := annot.Parse(fs.Annot)
				if err != nil {
					unreserve()
					return nil, fmt.Errorf("core: module %s: %s: %v", spec.Name, fs.Name, err)
				}
				if own.Hash() != set.Hash() {
					unreserve()
					return nil, fmt.Errorf(
						"core: module %s: %s: conflicting annotations (explicit %q vs type %s %q)",
						spec.Name, fs.Name, own, fs.Type, set)
				}
			}
			if len(fs.Params) == 0 {
				fs.Params = ft.Params
			}
		} else {
			var err error
			set, err = annot.Parse(fs.Annot)
			if err != nil {
				unreserve()
				return nil, fmt.Errorf("core: module %s: %s: %v", spec.Name, fs.Name, err)
			}
		}
		f := &FuncDecl{Name: fs.Name, Module: spec.Name, Params: fs.Params, Annot: set, Impl: fs.Impl, owner: m}
		// Bind-time compilation (§4.2): the annotation set is lowered
		// into its action program once, here, instead of being
		// re-interpreted on every crossing into the module.
		f.prog = s.compileAnnot(fs.Params, set)
		s.registerFunc(f, s.moduleArea)
		m.Funcs[fs.Name] = f
		if fs.Type != "" {
			m.FuncTypes[fs.Name] = fs.Type
		}
	}

	// Allocate data sections.
	if spec.DataSize > 0 {
		m.Data = s.moduleArea.Alloc(spec.DataSize, mem.PageSize)
	}
	if spec.RODataSize > 0 {
		m.ROData = s.moduleArea.Alloc(spec.RODataSize, mem.PageSize)
	}

	shared := m.Set.Shared()

	// Initial capabilities (§3.2): WRITE to the writable data section...
	if spec.DataSize > 0 {
		s.Caps.Grant(shared, caps.WriteCap(m.Data, spec.DataSize))
		// "When a module is loaded, that module's shared principal is
		// added to the writer set for all of its writable sections" (§5).
		s.WST.MarkRange(m.Data, spec.DataSize)
	}
	// ... and CALL capabilities to all imported kernel routines. (In the
	// paper these name the functions' wrappers; here wrapping is implicit
	// in call mediation, so the capability names the function address.)
	// Each import is also resolved into a bound Gate — the module's
	// pre-linked crossing into that export — so module code never
	// repeats the symbol lookup per call (§4.2: resolution happens at
	// module initialization, not on the call path).
	m.gates = make(map[string]*Gate, len(spec.Imports))
	for _, imp := range spec.Imports {
		f, ok := s.FuncByName(imp)
		if !ok || !f.IsKernel() {
			unreserve()
			return nil, fmt.Errorf("core: module %s imports unknown kernel symbol %q", spec.Name, imp)
		}
		s.Caps.Grant(shared, caps.CallCap(f.Addr))
		m.gates[imp] = &Gate{fn: f, owner: m}
	}
	// A module may call its own functions and store pointers to them in
	// kernel-visible slots (control flow integrity permits a module to
	// execute its own code).
	for _, f := range m.Funcs {
		s.Caps.Grant(shared, caps.CallCap(f.Addr))
	}

	s.mu.Lock()
	s.modules[spec.Name] = m
	s.mu.Unlock()
	return m, nil
}

// UnloadModule removes a module and revokes all its capabilities. The
// capability teardown happens inside the registry critical section so a
// concurrent LoadModule of the same name cannot slip between the two
// and have its fresh principal set discarded (lock order: core.System.mu
// before caps.System.mu, same as the grants in LoadModule's callees).
func (s *System) UnloadModule(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.modules[name]
	if !ok || m == nil {
		return
	}
	for _, f := range m.Funcs {
		delete(s.funcsByAddr, f.Addr)
	}
	delete(s.modules, name)
	s.Caps.UnloadModule(name)
}

// killModule marks a module dead after a violation.
func (s *System) killModule(m *Module, v *Violation) {
	if m == nil {
		return
	}
	m.kill(v)
}

// NewThread creates an execution context (one simulated kernel thread
// with its own shadow stack).
func (s *System) NewThread(name string) *Thread {
	t := &Thread{Sys: s, Name: name, mon: s.Mon, csys: s.Caps}
	if s.tracing.Load() {
		t.rec = trace.NewRing(trace.DefaultEvents, trace.DefaultSampleEvery)
	}
	t.emit = func(c caps.Cap) error {
		t.iterBuf = append(t.iterBuf, c)
		return nil
	}
	return t
}

package core

import (
	"strings"
	"testing"

	"lxfi/internal/caps"
	"lxfi/internal/mem"
)

// gateSys boots a system with one annotated kernel export and one
// module importing it, returning the pieces gate tests need.
func gateSys(t *testing.T, annot string) (*System, *Thread, *Module, *Gate) {
	t.Helper()
	s := NewSystem()
	s.Mon.SetMode(Enforce)
	var got []uint64
	s.RegisterKernelFunc("gate_sink",
		[]Param{P("p", "void *"), P("n", "u64")},
		annot,
		func(th *Thread, args []uint64) uint64 {
			got = append(got[:0], args...)
			return 0
		})
	m, err := s.LoadModule(ModuleSpec{
		Name:     "gmod",
		Imports:  []string{"gate_sink"},
		DataSize: 4096,
		Funcs: []FuncSpec{
			{Name: "cross", Params: []Param{P("p", "u64"), P("n", "u64")},
				Impl: func(th *Thread, a []uint64) uint64 {
					ret, err := th.CurrentModule().Gate("gate_sink").Call2(th, a[0], a[1])
					if err != nil || ret != 0 {
						return 1
					}
					return 0
				}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, s.NewThread("t"), m, m.Gate("gate_sink")
}

// TestGateCallRunsFullContract proves a gate call is mediated exactly
// like the string-keyed path: the compiled pre action still rejects a
// crossing whose capability the module does not own.
func TestGateCallRunsFullContract(t *testing.T) {
	s, th, m, _ := gateSys(t, "pre(check(write, p, 8))")
	owned := m.Data // module owns its data section
	if ret, err := th.CallModule(m, "cross", uint64(owned), 8); err != nil || ret != 0 {
		t.Fatalf("owned crossing failed: ret=%d err=%v", ret, err)
	}
	// A kernel address the module holds no WRITE for must violate.
	unowned := s.Statics.Alloc(64, 8)
	if _, err := th.CallModule(m, "cross", uint64(unowned), 8); err == nil {
		t.Fatal("gate call with unowned capability must fail the pre check")
	}
	if v := s.Mon.LastViolation(); v == nil || !strings.Contains(v.Detail, "does not own") {
		t.Fatalf("expected ownership violation, got %v", v)
	}
}

// TestGateCallAllocationFree is the 0 allocs/op guarantee at unit
// level: a warm module-side gate crossing performs no allocation.
func TestGateCallAllocationFree(t *testing.T) {
	_, th, m, _ := gateSys(t, "pre(check(write, p, 8)) post(if (return == 0) check(write, p, 8))")
	// The driver's argument slice is preallocated so the measurement
	// sees only the crossing itself (module code calls gates with fixed
	// arity; the variadic CallModule here is just the test's doorway).
	args := []uint64{uint64(m.Data), 8}
	// Warm the env pool, the arg stack, and the check cache.
	for i := 0; i < 16; i++ {
		if ret, err := th.CallModule(m, "cross", args...); err != nil || ret != 0 {
			t.Fatalf("warmup crossing failed: ret=%d err=%v", ret, err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if ret, err := th.CallModule(m, "cross", args...); err != nil || ret != 0 {
			t.Fatal("crossing failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm gate crossing allocates %.2f allocs/op, want 0", allocs)
	}
}

// TestGateUnknownImportPanics pins the bind-time failure mode.
func TestGateUnknownImportPanics(t *testing.T) {
	_, _, m, _ := gateSys(t, "")
	defer func() {
		if recover() == nil {
			t.Fatal("Gate on a non-import must panic at bind time")
		}
	}()
	m.Gate("kmalloc")
}

// TestFailedResolutionStat covers the satellite fix: CallKernel (and
// CallModule) on an unknown name must land in Monitor.Stats so
// violation accounting sees symbol-probing modules.
func TestFailedResolutionStat(t *testing.T) {
	s, th, m, _ := gateSys(t, "")
	before := s.Mon.Stats.Snapshot()
	if _, err := th.CallKernel("no_such_export", 1); err == nil {
		t.Fatal("unknown kernel function must error")
	}
	if _, err := th.CallModule(m, "no_such_fn"); err == nil {
		t.Fatal("unknown module function must error")
	}
	// A user function resolved via CallKernel is also a failed *kernel*
	// resolution.
	s.RegisterUserFunc("userfn", func(*Thread, []uint64) uint64 { return 0 })
	if _, err := th.CallKernel("userfn"); err == nil {
		t.Fatal("user function must not resolve as kernel export")
	}
	d := s.Mon.Stats.Snapshot().Sub(before)
	if d.FailedResolutions != 3 {
		t.Fatalf("FailedResolutions = %d, want 3", d.FailedResolutions)
	}
}

// TestRefVerdictCachedAndRevocable exercises the REF path of the
// per-thread check cache: a REF ownership check inside a compiled
// action program is answered from cache on repeat, and revocation
// (epoch bump) invalidates it immediately.
func TestRefVerdictCachedAndRevocable(t *testing.T) {
	s := NewSystem()
	s.Mon.SetMode(Enforce)
	s.RegisterKernelFunc("ref_sink",
		[]Param{P("obj", "struct refobj *")},
		"pre(check(ref(struct refobj), obj))",
		func(th *Thread, args []uint64) uint64 { return 0 })
	m, err := s.LoadModule(ModuleSpec{
		Name:     "refmod",
		Imports:  []string{"ref_sink"},
		DataSize: 4096,
		Funcs: []FuncSpec{
			{Name: "cross", Params: []Param{P("obj", "u64")},
				Impl: func(th *Thread, a []uint64) uint64 {
					ret, err := th.CurrentModule().Gate("ref_sink").Call1(th, a[0])
					if err != nil || ret != 0 {
						return 1
					}
					return 0
				}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	th := s.NewThread("t")
	// Keep the object's check-cache slot distinct from ref_sink's CALL
	// slot (the cache is direct-mapped; aliasing addresses would just
	// thrash the line and hide the hit this test asserts).
	obj := mem.Addr(0xffff8800_0200_0100)
	ref := caps.RefCap("struct refobj", obj)
	s.Caps.Grant(m.Set.Shared(), ref)

	for i := 0; i < 4; i++ {
		if ret, err := th.CallModule(m, "cross", uint64(obj)); err != nil || ret != 0 {
			t.Fatalf("REF crossing %d failed: ret=%d err=%v", i, ret, err)
		}
	}
	before := s.Mon.Stats.Snapshot()
	if ret, err := th.CallModule(m, "cross", uint64(obj)); err != nil || ret != 0 {
		t.Fatalf("warm REF crossing failed: ret=%d err=%v", ret, err)
	}
	d := s.Mon.Stats.Snapshot().Sub(before)
	if d.CapCacheHits == 0 {
		t.Fatalf("warm REF check missed the cache: %+v", d)
	}

	// Revocation must invalidate the cached allow at once.
	s.Caps.RevokeAll(ref)
	if _, err := th.CallModule(m, "cross", uint64(obj)); err == nil {
		t.Fatal("SECURITY: revoked REF capability was served from the check cache")
	}
}

// TestRefCacheTypeConfusion pins tag uniqueness: a cached allow for one
// REF type must never answer a check for a different type at the same
// address.
func TestRefCacheTypeConfusion(t *testing.T) {
	s := NewSystem()
	s.Mon.SetMode(Enforce)
	for _, typ := range []string{"struct a", "struct b"} {
		typ := typ
		s.RegisterKernelFunc("sink_"+typ[7:],
			[]Param{P("obj", "*"+typ)},
			"pre(check(ref("+typ+"), obj))",
			func(th *Thread, args []uint64) uint64 { return 0 })
	}
	m, err := s.LoadModule(ModuleSpec{
		Name:     "confmod",
		Imports:  []string{"sink_a", "sink_b"},
		DataSize: 4096,
		Funcs: []FuncSpec{
			{Name: "crossa", Params: []Param{P("obj", "u64")},
				Impl: func(th *Thread, a []uint64) uint64 {
					ret, err := th.CurrentModule().Gate("sink_a").Call1(th, a[0])
					if err != nil || ret != 0 {
						return 1
					}
					return 0
				}},
			{Name: "crossb", Params: []Param{P("obj", "u64")},
				Impl: func(th *Thread, a []uint64) uint64 {
					ret, err := th.CurrentModule().Gate("sink_b").Call1(th, a[0])
					if err != nil || ret != 0 {
						return 1
					}
					return 0
				}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	th := s.NewThread("t")
	obj := mem.Addr(0xffff8800_0300_0000)
	s.Caps.Grant(m.Set.Shared(), caps.RefCap("struct a", obj))

	// Warm the cache with the owned type at obj's slot...
	for i := 0; i < 4; i++ {
		if ret, err := th.CallModule(m, "crossa", uint64(obj)); err != nil || ret != 0 {
			t.Fatalf("type-a crossing failed: ret=%d err=%v", ret, err)
		}
	}
	// ...then the unowned type at the same address must still violate.
	if _, err := th.CallModule(m, "crossb", uint64(obj)); err == nil {
		t.Fatal("SECURITY: REF verdict for struct a answered a struct b check")
	}
}

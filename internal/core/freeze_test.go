package core

import (
	"strings"
	"testing"
)

// TestConstTableFreezeAndFold pins the constant-table lifecycle around
// the first module load: before it the table is fully mutable, after
// it a rebind to a different value panics (compiled programs may have
// folded the old value), while same-value re-registration and new
// names stay legal — and the bind-time compiler really does fold a
// frozen constant out of the runtime name table.
func TestConstTableFreezeAndFold(t *testing.T) {
	s := NewSystem()
	s.Mon.SetMode(Enforce)

	// Pre-freeze: rebinding is unrestricted.
	s.RegisterConst("GUARD", 1)
	s.RegisterConst("GUARD", 7)

	// The first load freezes the table.
	if _, err := s.LoadModule(ModuleSpec{Name: "first"}); err != nil {
		t.Fatal(err)
	}

	// An export registered after the freeze compiles with GUARD folded.
	sink := s.RegisterKernelFunc("freeze_sink",
		[]Param{P("p", "void *"), P("n", "u64")},
		"pre(if (n == GUARD) check(write, p, 8))",
		func(th *Thread, args []uint64) uint64 { return 0 })
	if sink.prog == nil || len(sink.prog.pre) == 0 || len(sink.prog.pre[0].conds) == 0 {
		t.Fatalf("freeze_sink did not compile to a program")
	}
	// The fold pin: the compiled if-condition resolved GUARD at bind
	// time, so the program's runtime name table holds only the
	// parameter fallback — not GUARD.
	for _, name := range sink.prog.pre[0].conds[0].prog.Names {
		if name == "GUARD" {
			t.Fatal("GUARD still runtime-resolved after the table froze")
		}
	}

	// Behavior: the folded value drives the condition on a real
	// module → kernel crossing. n == 7 arms the check against an
	// address the module does not own (violation); any other n skips
	// it.
	m, err := s.LoadModule(ModuleSpec{
		Name:     "cmod",
		Imports:  []string{"freeze_sink"},
		DataSize: 4096,
		Funcs: []FuncSpec{
			{Name: "cross", Params: []Param{P("p", "u64"), P("n", "u64")},
				Impl: func(th *Thread, a []uint64) uint64 {
					ret, err := th.CurrentModule().Gate("freeze_sink").Call2(th, a[0], a[1])
					if err != nil || ret != 0 {
						return 1
					}
					return 0
				}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	th := s.NewThread("t")
	unowned := s.Statics.Alloc(64, 8)
	if ret, err := th.CallModule(m, "cross", uint64(unowned), 3); err != nil || ret != 0 {
		t.Fatalf("skipped check still failed: ret=%d err=%v", ret, err)
	}
	// The violation kills the module, so the outer crossing reports the
	// kill; either signal proves the armed check ran.
	if ret, err := th.CallModule(m, "cross", uint64(unowned), 7); err == nil && ret == 0 {
		t.Fatal("armed check passed for an unowned address")
	}
	if v := s.Mon.LastViolation(); v == nil {
		t.Fatal("armed check produced no violation")
	}

	// Post-freeze: same value and new names are fine ...
	s.RegisterConst("GUARD", 7)
	s.RegisterConst("FREEZE_LATE", 3)
	// ... a rebind to a different value panics.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("post-freeze rebind of GUARD did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "froze") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	s.RegisterConst("GUARD", 8)
}

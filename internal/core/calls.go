package core

import (
	"fmt"

	"lxfi/internal/caps"
	"lxfi/internal/failpoint"
	"lxfi/internal/mem"
	"lxfi/internal/trace"
)

func init() {
	failpoint.Register("kernel.entry")
}

// CallKernel invokes a core-kernel export on behalf of the current
// context. In module context this is the function-wrapper path of §4.2:
// the wrapper checks the CALL capability, runs pre actions, switches to
// trusted kernel context, invokes the function, runs post actions, and
// validates the shadow stack on the way out.
//
// In kernel context (t.cur == nil) the call is direct: "Since LXFI
// assumes that the core kernel is fully trusted, it can omit most checks
// for performance" (§4).
// Hot callers should bind a Gate at load time instead (gate.go); the
// string-keyed path remains for cold callers, tests, and exploit
// payloads.
func (t *Thread) CallKernel(name string, args ...uint64) (uint64, error) {
	fn, ok := t.Sys.FuncByName(name)
	if !ok || !fn.IsKernel() {
		// A failed resolution is part of the violation picture (a module
		// probing for symbols it was not linked against), so it lands in
		// the monitor's stats even though no capability check ran.
		t.Sys.Mon.Stats.FailedResolutions.Add(1)
		return 0, fmt.Errorf("core: no such kernel function %q", name)
	}
	return t.callKernelDecl(fn, args)
}

func (t *Thread) callKernelDecl(fn *FuncDecl, args []uint64) (uint64, error) {
	mediated := t.cur != nil && t.Sys.Mon.Enforcing()
	callerMod := t.curMod
	callerPrin := t.cur
	var env *argEnv

	// Fault site at the kernel-export boundary, module callers only —
	// in both modes, so chaos runs compare stock and enforced behavior.
	// A panic policy here unwinds into the calling module's crossing
	// gate, which contains it as a module oops; pure kernel-context
	// calls never evaluate the site.
	if callerMod != nil {
		if err := failpoint.InjectArg("kernel.entry", fn.Name); err != nil {
			return 0, err
		}
	}

	// Only mediated crossings are flight-recorded: kernel-context calls
	// are direct jumps with nothing to observe.
	traced := mediated && t.rec != nil
	var tc traceCtx
	if traced {
		tc = t.traceBegin()
	}

	if mediated {
		t.Sys.Mon.Stats.FuncEntries.Add(1)
		// Safe default (§2.2): a kernel function with no annotations
		// cannot be accessed by a kernel module at all.
		if fn.Annot == nil {
			return 0, t.violation("call", fn.Addr,
				fmt.Sprintf("call to unannotated kernel function %s", fn.Name))
		}
		// The module may only call functions it holds CALL capabilities
		// for (granted for its imports at load time).
		if !t.checkCap(t.cur, caps.CallCap(fn.Addr)) {
			return 0, t.violation("call", fn.Addr,
				fmt.Sprintf("no CALL capability for %s", fn.Name))
		}
		env = t.getEnv(fn.Params, args)
		defer t.putEnv(env)
		// pre: ownership checked on the caller (module); grants flow
		// caller -> callee (kernel).
		if err := t.runPre(fn, true, env, callerPrin, t.Sys.Caps.Trusted, callerMod); err != nil {
			return 0, err
		}
	}

	ret, err := t.runKernelImpl(callerMod, callerPrin, fn, args)
	if err != nil {
		return ret, err
	}

	if mediated {
		t.Sys.Mon.Stats.FuncExits.Add(1)
		if callerMod != nil && callerMod.Dead() {
			return ret, ErrModuleDead
		}
		env.ret, env.hasRet = ret, true
		// post: ownership checked on the callee (kernel, trivially true);
		// grants flow callee -> caller.
		if err := t.runPost(fn, true, env, t.Sys.Caps.Trusted, callerPrin, callerMod); err != nil {
			return ret, err
		}
	}
	if traced {
		t.traceEnd(trace.KindKernelCall, fn.Name, callerMod, callerPrin, fn.Addr, tc)
	}
	return ret, nil
}

// runKernelImpl pushes the shadow frame, switches to trusted kernel
// context, runs the kernel function, and pops the frame. A panic raised
// in a kernel function called from module context is blamed on the
// calling module (the kernel was fed bad state through this crossing)
// and contained as a synthetic violation; in pure kernel context there
// is nothing to contain it with — it propagates as a genuine kernel
// panic.
func (t *Thread) runKernelImpl(callerMod *Module, callerPrin *caps.Principal, fn *FuncDecl, args []uint64) (ret uint64, err error) {
	depth := len(t.shadow)
	argBase := len(t.argStack)
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if callerMod == nil {
			panic(rec)
		}
		t.recoverCrossing(depth, argBase)
		ret, err = 0, t.panicViolation(callerMod, callerPrin, fn, rec)
	}()
	tok := t.pushFrame(fn)
	t.cur, t.curMod = nil, nil // kernel code runs trusted
	ret = fn.Impl(t, args)
	err = t.popFrame(tok)
	return ret, err
}

// runModuleImpl pushes the shadow frame, switches principal, runs the
// module function, and pops the frame. A panic raised anywhere inside
// the crossing — module code, or a nested call that unwound back into
// it — is recovered here into a synthetic "panic" violation instead of
// unwinding the host kernel: the module oopsed, the kernel survives.
func (t *Thread) runModuleImpl(m *Module, callee *caps.Principal, fn *FuncDecl, args []uint64) (ret uint64, err error) {
	depth := len(t.shadow)
	argBase := len(t.argStack)
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		t.recoverCrossing(depth, argBase)
		ret, err = 0, t.panicViolation(m, callee, fn, rec)
	}()
	tok := t.pushFrame(fn)
	t.cur, t.curMod = callee, m // callee == nil when enforcement is off
	ret = fn.Impl(t, args)
	err = t.popFrame(tok)
	return ret, err
}

// recoverCrossing restores the thread's crossing state after a panic
// unwound past nested pushFrame'd crossings without their popFrame
// running. Every frame at or above the recovery point is discarded
// wholesale — per-frame CFI return-token validation is meaningless
// mid-unwind, and running it would misreport the oops as shadow-stack
// tampering — and the caller context is restored from the frame this
// gate pushed. The argument stack is truncated the same way (the gates
// pop it manually after a normal return).
func (t *Thread) recoverCrossing(depth, argBase int) {
	if len(t.shadow) > depth {
		f := t.shadow[depth]
		t.cur, t.curMod = f.savedCur, f.savedMod
		t.shadow = t.shadow[:depth]
	}
	t.argStack = t.argStack[:argBase]
}

// panicViolation routes a panic recovered at a crossing boundary into
// the violation pipeline. Under enforcement it is a first-class
// violation — recorded, module killed, forensics hook and supervisor
// subscribers notified. On the stock kernel there is no monitor doing
// the attributing: the oops still kills the module and wakes the
// supervisor's subscribers, but records nothing, mirroring how a stock
// oops takes the module down with no isolation log.
func (t *Thread) panicViolation(m *Module, p *caps.Principal, fn *FuncDecl, rec any) error {
	if p == nil && m.Set != nil {
		p = m.Set.Shared()
	}
	detail := fmt.Sprintf("panic in %s: %v", fn.Name, rec)
	if t.Sys.Mon.Enforcing() {
		return t.violationAt(m, p, "panic", fn.Addr, detail)
	}
	v := &Violation{
		Module:    m.Name,
		Principal: p.String(),
		Op:        "panic",
		Addr:      fn.Addr,
		Detail:    detail,
	}
	t.Sys.killModule(m, v)
	t.Sys.Mon.notifySubscribers(v, t)
	return fmt.Errorf("%w (%s): %s", ErrModuleDead, m.Name, detail)
}

// runPre and runPost execute one side of a crossing's contract. The
// compiled action program runs when the declaration has one and the
// caller did not substitute a foreign parameter list (useProg); the
// tree interpreter remains the fallback for that cold case.
func (t *Thread) runPre(fn *FuncDecl, useProg bool, env *argEnv, from, to *caps.Principal, blame *Module) error {
	if useProg && fn.prog != nil {
		return t.runProgram("pre", fn.Name, fn.prog.pre, env, from, to, blame)
	}
	return t.runActions("pre", fn.Name, fn.Annot.Pre, env, from, to, blame)
}

func (t *Thread) runPost(fn *FuncDecl, useProg bool, env *argEnv, from, to *caps.Principal, blame *Module) error {
	if useProg && fn.prog != nil {
		return t.runProgram("post", fn.Name, fn.prog.post, env, from, to, blame)
	}
	return t.runActions("post", fn.Name, fn.Annot.Post, env, from, to, blame)
}

// CallModule invokes a module function by name from the current context
// (normally the core kernel, e.g. a driver probe or an ops callback
// reached through a checked indirect call).
func (t *Thread) CallModule(m *Module, fname string, args ...uint64) (uint64, error) {
	fn, ok := m.Funcs[fname]
	if !ok {
		t.Sys.Mon.Stats.FailedResolutions.Add(1)
		return 0, fmt.Errorf("core: module %s has no function %q", m.Name, fname)
	}
	return t.callModuleDecl(m, fn, args)
}

func (t *Thread) callModuleDecl(m *Module, fn *FuncDecl, args []uint64) (uint64, error) {
	return t.callModuleDeclParams(m, fn, fn.Params, false, args)
}

// callModuleDeclParams is callModuleDecl with the effective parameter
// list supplied by the caller (an indirect call substitutes the slot
// type's parameters when the function declaration carries none;
// substituted=true then forces the tree interpreter, whose by-name
// argument binding is what the substitution relies on).
func (t *Thread) callModuleDeclParams(m *Module, fn *FuncDecl, params []Param, substituted bool, args []uint64) (uint64, error) {
	// Entry protocol (reload.go): register the crossing in the module's
	// active counter, park if a reload is quiescing the module, and
	// re-bind to the successor generation if it has been retired.
	var err error
	m, fn, params, substituted, err = t.enterModule(m, fn, params, substituted)
	if err != nil {
		return 0, err
	}
	entered := m
	defer entered.active.Add(-1)
	if m.Dead() {
		return 0, fmt.Errorf("%w (%s)", ErrModuleDead, m.Name)
	}
	enforcing := t.Sys.Mon.Enforcing()
	callerPrin := t.cur
	useProg := !substituted

	traced := enforcing && t.rec != nil
	var tc traceCtx
	if traced {
		tc = t.traceBegin()
	}

	var env *argEnv
	var callee *caps.Principal
	if enforcing {
		t.Sys.Mon.Stats.FuncEntries.Add(1)
		env = t.getEnv(params, args)
		defer t.putEnv(env)
		var err error
		// The wrapper "sets the appropriate principal" (§4.2) from the
		// principal(...) annotation before running the module function.
		if useProg && fn.prog != nil {
			callee, err = t.resolvePrincipalProg(m, fn.prog, env)
		} else {
			callee, err = t.resolvePrincipal(m, fn.Annot, env)
		}
		if err != nil {
			return 0, t.violationAt(m, m.Set.Shared(), "annotation", fn.Addr, err.Error())
		}
		t.Sys.Mon.Stats.PrincipalSwitches.Add(1)
		// pre: ownership checked on the caller; grants flow caller ->
		// callee principal.
		if err := t.runPre(fn, useProg, env, callerPrin, callee, t.curMod); err != nil {
			return 0, err
		}
	}

	ret, err := t.runModuleImpl(m, callee, fn, args)
	if err != nil {
		return ret, err
	}

	if enforcing {
		t.Sys.Mon.Stats.FuncExits.Add(1)
		if m.Dead() {
			return ret, fmt.Errorf("%w (%s)", ErrModuleDead, m.Name)
		}
		env.ret, env.hasRet = ret, true
		// post: ownership checked on the callee (module); grants flow
		// callee -> caller.
		if err := t.runPost(fn, useProg, env, callee, callerPrin, m); err != nil {
			return ret, err
		}
	}
	if traced {
		t.traceEnd(trace.KindModuleCall, fn.Name, m, callee, fn.Addr, tc)
	}
	return ret, nil
}

// IndirectCall performs a core-kernel indirect call through the function
// pointer stored at slot, whose declared type is the registered FPtrType
// typeName. This is the lxfi_check_indcall path of §4.1: the kernel
// rewriter has replaced `(*slot)(args...)` with a checked call that
// passes the *address of the original function pointer* (Fig. 5), so the
// runtime can consult the writer set for that slot.
// Hot kernel-side callers should bind an IndGate at init instead
// (gate.go); this path repeats the type lookup per call.
func (t *Thread) IndirectCall(slot mem.Addr, typeName string, args ...uint64) (uint64, error) {
	ft, ok := t.Sys.FPtrType(typeName)
	if !ok {
		panic("core: indirect call through unregistered fptr type " + typeName)
	}
	return t.indirectCallFT(slot, ft, args)
}

// indirectCallFT is IndirectCall past type resolution — the body every
// bound IndGate jumps straight into.
func (t *Thread) indirectCallFT(slot mem.Addr, ft *FPtrType, args []uint64) (uint64, error) {
	target, err := t.Sys.AS.ReadU64(slot)
	if err != nil {
		return 0, fmt.Errorf("core: indirect call: cannot load pointer at %#x: %v", uint64(slot), err)
	}
	taddr := mem.Addr(target)

	if t.Sys.Mon.Enforcing() {
		t.Sys.Mon.Stats.IndCallAll.Add(1)
		// Fast path: if no principal was ever granted WRITE access to the
		// slot since it was last zeroed, no module can have supplied the
		// pointer and the expensive check is skipped (§4.1 writer-set
		// tracking). The ablation flag forces the slow path everywhere.
		if t.Sys.Mon.DisableWriterSetOpt || !t.Sys.WST.Empty(slot) {
			t.Sys.Mon.Stats.IndCallSlow.Add(1)
			if err := t.checkIndCallSlow(slot, taddr, ft); err != nil {
				return 0, err
			}
		}
	}

	return t.dispatch(taddr, ft, args)
}

// checkIndCallSlow validates a module-writable function-pointer slot:
// every principal that could have written the slot must hold a CALL
// capability for the target, and the target's annotations must match the
// slot type's annotations.
func (t *Thread) checkIndCallSlow(slot, target mem.Addr, ft *FPtrType) error {
	writers := t.Sys.Caps.WriteGrantees(slot)
	if len(writers) == 0 {
		// Conservative bitmap said non-empty but no live grantee; treat
		// as kernel-written and allow.
		return nil
	}
	fn, known := t.Sys.FuncByAddr(target)
	for _, w := range writers {
		blame, _ := t.Sys.Module(w.Module)
		if !known {
			return t.violationAt(blame, w, "indcall", target,
				fmt.Sprintf("module-writable slot %#x points to non-function address %#x",
					uint64(slot), uint64(target)))
		}
		if !t.checkCap(w, caps.CallCap(target)) {
			return t.violationAt(blame, w, "indcall", target,
				fmt.Sprintf("writer %s lacks CALL capability for target %s of slot %#x",
					w, fn, uint64(slot)))
		}
		// Annotation-hash match (§4.1): the module must not launder a
		// function through a pointer type with different annotations.
		// Per §7, the check applies when the target has annotations.
		if fn.Annot != nil && fn.Annot.Hash() != ft.Annot.Hash() {
			return t.violationAt(blame, w, "indcall", target,
				fmt.Sprintf("annotation mismatch: %s has %q but slot type %s has %q",
					fn, fn.Annot, ft.Name, ft.Annot))
		}
	}
	return nil
}

// dispatch transfers control to the function at target.
func (t *Thread) dispatch(target mem.Addr, ft *FPtrType, args []uint64) (uint64, error) {
	fn, ok := t.Sys.FuncByAddr(target)
	if !ok {
		// A wild pointer: in the real kernel this is an oops (or, if the
		// attacker mapped the page, arbitrary code execution — modeled by
		// RegisterUserFuncAt).
		return 0, fmt.Errorf("core: kernel oops: indirect call to invalid address %#x", uint64(target))
	}
	return t.dispatchFn(fn, nil, ft, args)
}

// dispatchFn is dispatch past target resolution. m, when non-nil, is a
// pre-resolved module for fn (the IndGate slot cache supplies it); the
// entry protocol revalidates it, so a generation staled by a reload is
// still redirected correctly.
func (t *Thread) dispatchFn(fn *FuncDecl, m *Module, ft *FPtrType, args []uint64) (uint64, error) {
	switch {
	case fn.IsUser():
		// The kernel jumping to user-mapped code: the exploit payload runs
		// with full kernel privilege. (Under Enforce this is unreachable
		// for module-supplied pointers; the slow-path check rejects it.)
		tok := t.pushFrame(fn)
		saved, savedMod := t.cur, t.curMod
		t.cur, t.curMod = nil, nil
		ret := fn.Impl(t, args)
		if err := t.popFrame(tok); err != nil {
			return ret, err
		}
		t.cur, t.curMod = saved, savedMod
		return ret, nil
	case fn.IsKernel():
		return t.callKernelDecl(fn, args)
	default:
		if m == nil {
			var ok bool
			m, ok = t.Sys.Module(fn.Module)
			if !ok {
				// Mid-reload window: the old generation is retired and the
				// fresh one not yet published. The owning module object is
				// still reachable from the declaration; the entry protocol
				// parks the crossing there until the reload resolves, so
				// no in-flight crossing is dropped.
				if fn.owner == nil {
					return 0, fmt.Errorf("core: function %s belongs to unloaded module", fn)
				}
				m = fn.owner
			}
		}
		// Apply the *slot type's* parameter names if the function carries
		// none (annotation propagation already guaranteed hash equality).
		// The declaration itself is shared between threads, so the
		// substitution is made per call rather than written back into it.
		params := fn.Params
		if len(params) == 0 {
			return t.callModuleDeclParams(m, fn, ft.Params, true, args)
		}
		return t.callModuleDeclParams(m, fn, params, false, args)
	}
}

// indirectCallGate is the bound IndGate entry: indirectCallFT plus the
// per-gate (slot → target) cache. A hit must match the slot, the
// loaded target value, the enforcement mode, and the capability epoch;
// any capability mutation (grant, revoke, module load/unload/retire,
// instance drop) bumps the epoch and invalidates every entry, exactly
// like the per-thread check caches. A valid hit skips the writer-set
// probe, the grantee sweep, and the System.mu function lookups — the
// last registry read lock on the kernel-side indirect hot path.
func (t *Thread) indirectCallGate(g *IndGate, slot mem.Addr, args []uint64) (uint64, error) {
	target, err := t.Sys.AS.ReadU64(slot)
	if err != nil {
		return 0, fmt.Errorf("core: indirect call: cannot load pointer at %#x: %v", uint64(slot), err)
	}
	taddr := mem.Addr(target)
	enforcing := t.mon.Enforcing()

	idx := (uint64(slot) >> 3) & (indCacheSlots - 1)
	// The epoch is read before the checks run: a mutation racing the
	// fill leaves the stored entry already stale.
	epoch := t.csys.Epoch()
	if e := g.cache[idx].Load(); e != nil && e.slot == slot && e.target == target &&
		e.enforcing == enforcing && e.epoch == epoch {
		if enforcing {
			t.Sys.Mon.Stats.IndCallAll.Add(1)
			t.Sys.Mon.Stats.IndCacheHits.Add(1)
		}
		return t.dispatchFn(e.fn, e.m, g.ft, args)
	}

	if enforcing {
		t.Sys.Mon.Stats.IndCallAll.Add(1)
		if t.Sys.Mon.DisableWriterSetOpt || !t.Sys.WST.Empty(slot) {
			t.Sys.Mon.Stats.IndCallSlow.Add(1)
			if err := t.checkIndCallSlow(slot, taddr, g.ft); err != nil {
				return 0, err
			}
		}
	}

	fn, ok := t.Sys.FuncByAddr(taddr)
	if !ok {
		return 0, fmt.Errorf("core: kernel oops: indirect call to invalid address %#x", uint64(target))
	}
	e := &indCacheEnt{slot: slot, target: target, epoch: epoch, enforcing: enforcing, fn: fn}
	if !fn.IsKernel() && !fn.IsUser() {
		if m, ok := t.Sys.Module(fn.Module); ok {
			e.m = m
		}
	}
	g.cache[idx].Store(e)
	return t.dispatchFn(fn, e.m, g.ft, args)
}

// CallAddr is the module-side indirect call: module code invoking a
// function pointer (e.g. a kernel-provided callback) of declared type
// typeName. The module rewriter instruments these sites so the runtime
// can verify the CALL capability and annotation match before the jump.
func (t *Thread) CallAddr(target mem.Addr, typeName string, args ...uint64) (uint64, error) {
	ft, ok := t.Sys.FPtrType(typeName)
	if !ok {
		panic("core: indirect call through unregistered fptr type " + typeName)
	}
	return t.callAddrFT(target, ft, args)
}

// callAddrFT is CallAddr past type resolution (the IndGate CallAddr
// entry points land here).
func (t *Thread) callAddrFT(target mem.Addr, ft *FPtrType, args []uint64) (uint64, error) {
	fn, known := t.Sys.FuncByAddr(target)

	if t.cur != nil && t.Sys.Mon.Enforcing() {
		if !t.checkCap(t.cur, caps.CallCap(target)) {
			return 0, t.violation("call", target,
				fmt.Sprintf("module indirect call: no CALL capability for %#x", uint64(target)))
		}
		if known && fn.Annot != nil && fn.Annot.Hash() != ft.Annot.Hash() {
			return 0, t.violation("call", target,
				fmt.Sprintf("module indirect call: annotation mismatch for %s via %s", fn, ft.Name))
		}
	}
	if !known {
		return 0, fmt.Errorf("core: kernel oops: indirect call to invalid address %#x", uint64(target))
	}
	if fn.IsKernel() {
		return t.callKernelDecl(fn, args)
	}
	if m, ok := t.Sys.Module(fn.Module); ok {
		return t.callModuleDecl(m, fn, args)
	}
	if fn.owner != nil {
		// Mid-reload window: park at the old generation's gate (the
		// entry protocol redirects once the successor is published).
		return t.callModuleDecl(fn.owner, fn, args)
	}
	return 0, fmt.Errorf("core: cannot dispatch %s", fn)
}

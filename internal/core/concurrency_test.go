package core_test

import (
	"fmt"
	"sync"
	"testing"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/mem"
)

// The concurrency property battery: goroutine-backed threads hammer the
// monitor's shared state — capability grant (copy), transfer, revoke,
// and check on shared and instance principals — while the race detector
// watches. The SCOOP verification line of work is the motivation:
// concurrency contracts are only trustworthy when the interleavings are
// actually explored, not just argued about.

// TestConcurrentCapabilityChurn: N threads run a module function that
// kmallocs (WRITE transfer in), writes, and kfrees (transfer out, which
// revokes system-wide) in a tight loop, all against the same shared
// principal, while more threads hammer raw grant/check/revoke on a
// contended region. Invariants: no violations, every call succeeds, and
// after a closing revoke nobody holds the contended region.
func TestConcurrentCapabilityChurn(t *testing.T) {
	f := newFixture(t, core.Enforce)
	sys := f.sys

	const (
		threads = 8
		rounds  = 200
	)

	churn := func(th *core.Thread, args []uint64) uint64 {
		for i := uint64(0); i < args[0]; i++ {
			p, err := th.CallKernel("kmalloc", 64)
			if err != nil || p == 0 {
				return 1
			}
			if err := th.WriteU64(mem.Addr(p), i); err != nil {
				return 2
			}
			// The allocation is ours: the transfer must have landed on
			// this module's shared principal, visible from any thread.
			if err := th.LxfiCheck(caps.WriteCap(mem.Addr(p), 8)); err != nil {
				return 3
			}
			if _, err := th.CallKernel("kfree", p); err != nil {
				return 4
			}
		}
		return 0
	}
	m, err := sys.LoadModule(core.ModuleSpec{
		Name:     "churnmod",
		Imports:  []string{"kmalloc", "kfree"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "churn", Params: []core.Param{core.P("rounds", "u64")}, Impl: churn},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The contended region: repeatedly granted to and revoked from the
	// module's shared principal by dedicated threads while the churners
	// run. Checks may see either state; what must hold is the absence of
	// torn state (the race detector's job) and of violations.
	region := sys.Statics.Alloc(256, 8)
	contended := caps.WriteCap(region, 256)

	var handles []*core.ThreadHandle
	rets := make([]uint64, threads)
	errs := make([]error, threads)
	for i := 0; i < threads; i++ {
		i := i
		handles = append(handles, sys.Spawn(fmt.Sprintf("churn%d", i), func(th *core.Thread) {
			rets[i], errs[i] = th.CallModule(m, "churn", rounds)
		}))
	}
	var aux sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		aux.Add(1)
		go func() {
			defer aux.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sys.Caps.Grant(m.Set.Shared(), contended)
				_ = sys.Caps.Check(m.Set.Shared(), caps.WriteCap(region, 8))
				sys.Caps.RevokeAll(contended)
			}
		}()
	}
	for _, h := range handles {
		h.Join()
	}
	close(stop)
	aux.Wait()

	for i := 0; i < threads; i++ {
		if errs[i] != nil || rets[i] != 0 {
			t.Fatalf("churn thread %d: ret=%d err=%v", i, rets[i], errs[i])
		}
	}
	if n := len(sys.Mon.Violations()); n != 0 {
		t.Fatalf("%d violations during churn: %v", n, sys.Mon.LastViolation())
	}
	// Closing property: a system-wide revoke leaves no grantee behind.
	sys.Caps.RevokeAll(contended)
	if got := sys.Caps.WriteGrantees(region); len(got) != 0 {
		t.Fatalf("region still granted to %v after RevokeAll", got)
	}
	if sys.Caps.Check(m.Set.Shared(), caps.WriteCap(region, 8)) {
		t.Fatal("shared principal still passes check after RevokeAll")
	}
}

// TestConcurrentInstancePrincipals: threads running as *different*
// instance principals of one module must never observe each other's
// capabilities, no matter the interleaving. Each thread creates its own
// instance (via the principal(dev) entry point), allocates memory under
// it, and probes a sibling's allocation — the probe must fail on every
// thread, every round.
func TestConcurrentInstancePrincipals(t *testing.T) {
	f := newFixture(t, core.Enforce)
	sys := f.sys

	const threads = 6

	// Each instance's latest allocation, for sibling probes. Index by
	// worker id; slots are written only by their owner, then published
	// through the WaitGroup/channel pair: every worker Done()s after
	// storing, the barrier closes only once all have, so the sibling
	// reads are ordered after all the writes.
	bufs := make([]mem.Addr, threads)
	var published sync.WaitGroup
	published.Add(threads)
	ready := make(chan struct{})

	work := func(th *core.Thread, args []uint64) uint64 {
		self := args[1]
		p, err := th.CallKernel("kmalloc", 64)
		if err != nil || p == 0 {
			published.Done()
			return 1
		}
		bufs[self] = mem.Addr(p)
		published.Done()
		// Instance principals own what they allocate...
		if err := th.LxfiCheck(caps.WriteCap(mem.Addr(p), 8)); err != nil {
			return 2
		}
		<-ready
		// ...and nothing a sibling allocated. Check directly (no
		// violation recorded): ownership must be invisible.
		sibling := bufs[(self+1)%threads]
		if sys.Caps.Check(th.CurrentPrincipal(), caps.WriteCap(sibling, 1)) {
			return 3
		}
		return 0
	}
	m, err := sys.LoadModule(core.ModuleSpec{
		Name:     "instmod",
		Imports:  []string{"kmalloc", "kfree"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "work",
				Params: []core.Param{core.P("dev", "u64"), core.P("self", "u64")},
				Annot:  "principal(dev)",
				Impl:   work},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	devs := make([]mem.Addr, threads)
	for i := range devs {
		devs[i] = sys.Statics.Alloc(16, 8)
	}
	rets := make([]uint64, threads)
	errsCh := make([]error, threads)
	var handles []*core.ThreadHandle
	for i := 0; i < threads; i++ {
		i := i
		handles = append(handles, sys.Spawn(fmt.Sprintf("inst%d", i), func(th *core.Thread) {
			rets[i], errsCh[i] = th.CallModule(m, "work", uint64(devs[i]), uint64(i))
		}))
	}
	// Release the sibling probes only after every worker has published
	// its allocation.
	go func() {
		published.Wait()
		close(ready)
	}()
	for _, h := range handles {
		h.Join()
	}
	for i := 0; i < threads; i++ {
		if errsCh[i] != nil || rets[i] != 0 {
			t.Fatalf("instance thread %d: ret=%d err=%v", i, rets[i], errsCh[i])
		}
	}
	if n := len(sys.Mon.Violations()); n != 0 {
		t.Fatalf("%d violations: %v", n, sys.Mon.LastViolation())
	}
}

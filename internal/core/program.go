// Bind-time compilation of annotation sets into action programs.
//
// The paper's loader compiles annotations into checking wrappers once,
// at module load (§4.2); calls then run the compiled checks. This file
// is that compile step for the simulation: when a function or
// function-pointer type is registered, its annot.Set is lowered into an
// annotProg — a flat slice of fixed-size actionSteps whose expressions
// are opcode programs (annot.ExprProg) with parameter names resolved to
// argument indices, whose iterators and REF cache tags are
// pre-resolved, and whose if-chains are flattened into per-step
// condition lists. The crossing paths in calls.go execute programs;
// the expression-tree interpreter in actions.go remains as the
// fallback for the one cold case a program cannot cover (an indirect
// call substituting the slot type's parameter list into a function
// declared without one) and as the oracle for the differential tests.
package core

import (
	"lxfi/internal/annot"
	"lxfi/internal/caps"
)

// compiledCond is one flattened if-condition. src is kept only for the
// cold violation path's error message.
type compiledCond struct {
	prog annot.ExprProg
	src  *annot.Expr
}

// actionStep is one compiled action: the opcode-program form of
// annot.Action with every bind-time-resolvable reference resolved.
type actionStep struct {
	op annot.Op // Copy, Transfer, Check, or Revoke (If is flattened into conds)

	// conds must all evaluate nonzero for the step to run (a flattened
	// `if (a) if (b) action` chain, evaluated in order with the tree
	// interpreter's short-circuit semantics).
	conds []compiledCond

	// src is the source caplist, used only in cold-path error text.
	src *annot.CapList

	// Inline caplist form:
	kind    annot.CapKind
	refType string
	refTag  uint64 // packed check-cache tag for REF verdicts (0 = uncacheable)
	ptr     annot.ExprProg
	size    annot.ExprProg
	hasSize bool
	// sizeof(*ptr) resolution when the size expression is omitted:
	// sizeofVal is the layout size resolved at compile time; when 0,
	// sizeofType (the named parameter's declared C type) is resolved
	// against the layout registry at run time, matching the tree
	// interpreter for layouts defined after registration.
	sizeofType string
	sizeofVal  uint64

	// Iterator form (iterName != "" selects it): iter is the function
	// resolved at compile time, nil when the iterator was registered
	// later (run time then resolves by name, as the tree does).
	iterName string
	iter     IterFunc
	iterArgs []annot.ExprProg
}

// isIterator reports whether the step is an iterator-func caplist.
func (st *actionStep) isIterator() bool { return st.iterName != "" }

// annotProg is the compiled form of one annot.Set for a specific
// parameter list.
type annotProg struct {
	pre, post []actionStep
	prinKind  annot.PrincipalKind
	prinProg  annot.ExprProg
	prinSrc   *annot.Expr
}

// bindEnv is the compile environment for bind-time lowering:
// parameter names resolve to argument indices, and registered
// constants fold to literals once the constant table has frozen at
// the first module load.
type bindEnv struct {
	params []Param
	sys    *System
}

// ParamIndex implements annot.CompileEnv.
func (e bindEnv) ParamIndex(name string) (int, bool) {
	for i, prm := range e.params {
		if prm.Name == name {
			return i, true
		}
	}
	return 0, false
}

// ConstValue implements annot.ConstEnv. It resolves nothing before the
// freeze: a pre-freeze RegisterConst may still rebind the name, so
// programs compiled that early (kernel exports registered at boot)
// keep runtime constant resolution.
func (e bindEnv) ConstValue(name string) (int64, bool) {
	if !e.sys.constsFrozen.Load() {
		return 0, false
	}
	return e.sys.Const(name)
}

// compileAnnot lowers set into an action program against params. A nil
// or uncompilable set yields nil, which the call paths read as "use
// the tree interpreter" — so a malformed set degrades to the old
// behavior instead of changing it.
func (s *System) compileAnnot(params []Param, set *annot.Set) *annotProg {
	if set == nil {
		return nil
	}
	cenv := bindEnv{params: params, sys: s}
	prog := &annotProg{prinKind: set.Principal.Kind}
	if set.Principal.Kind == annot.PrincipalExpr {
		p, err := annot.Compile(set.Principal.Expr, cenv)
		if err != nil {
			return nil
		}
		prog.prinProg, prog.prinSrc = p, set.Principal.Expr
	}
	var err error
	if prog.pre, err = s.compileActions(set.Pre, cenv, params); err != nil {
		return nil
	}
	if prog.post, err = s.compileActions(set.Post, cenv, params); err != nil {
		return nil
	}
	return prog
}

func (s *System) compileActions(actions []*annot.Action, cenv annot.CompileEnv, params []Param) ([]actionStep, error) {
	if len(actions) == 0 {
		return nil, nil
	}
	steps := make([]actionStep, 0, len(actions))
	for _, a := range actions {
		st, err := s.compileStep(a, cenv, params)
		if err != nil {
			return nil, err
		}
		steps = append(steps, st)
	}
	return steps, nil
}

func (s *System) compileStep(a *annot.Action, cenv annot.CompileEnv, params []Param) (actionStep, error) {
	var st actionStep
	for a != nil && a.Op == annot.If {
		prog, err := annot.Compile(a.Cond, cenv)
		if err != nil {
			return st, err
		}
		st.conds = append(st.conds, compiledCond{prog: prog, src: a.Cond})
		a = a.Then
	}
	if a == nil || a.Caps == nil {
		return st, errBadAction
	}
	st.op = a.Op
	cl := a.Caps
	st.src = cl
	if cl.IsIterator() {
		st.iterName = cl.Iter
		st.iter, _ = s.iterator(cl.Iter)
		st.iterArgs = make([]annot.ExprProg, 0, len(cl.IterArgs))
		for _, e := range cl.IterArgs {
			p, err := annot.Compile(e, cenv)
			if err != nil {
				return st, err
			}
			st.iterArgs = append(st.iterArgs, p)
		}
		return st, nil
	}
	st.kind = cl.Kind
	ptr, err := annot.Compile(cl.Ptr, cenv)
	if err != nil {
		return st, err
	}
	st.ptr = ptr
	switch cl.Kind {
	case annot.CapRef:
		st.refType = cl.RefType
		st.refTag = s.refTypeTag(cl.RefType)
	case annot.CapWrite:
		if cl.Size != nil {
			sz, err := annot.Compile(cl.Size, cenv)
			if err != nil {
				return st, err
			}
			st.size, st.hasSize = sz, true
		} else if cl.Ptr.Ident != "" {
			for _, p := range params {
				if p.Name == cl.Ptr.Ident {
					st.sizeofType = p.Type
					break
				}
			}
			if st.sizeofType != "" {
				if v, ok := s.sizeofType(st.sizeofType); ok {
					st.sizeofVal = v
				}
			}
		}
	}
	return st, nil
}

// errBadAction marks an action shape the compiler cannot lower; the
// set falls back to tree interpretation.
var errBadAction = &badActionError{}

type badActionError struct{}

func (*badActionError) Error() string { return "core: uncompilable annotation action" }

// refTypeTag interns a REF type name and returns its packed check-cache
// tag: a process-unique nonzero ID below the kind shift, or'd with the
// Ref kind bits. Tag equality therefore implies RefType string
// equality, which is what makes cached REF verdicts sound. Bind-time
// only; the hot path carries the tag in its actionStep.
func (s *System) refTypeTag(typ string) uint64 {
	s.refMu.Lock()
	defer s.refMu.Unlock()
	if s.refIDs == nil {
		s.refIDs = make(map[string]uint64)
	}
	id, ok := s.refIDs[typ]
	if !ok {
		id = uint64(len(s.refIDs)) + 1
		s.refIDs[typ] = id
	}
	return id | uint64(caps.Ref)<<sizeKindShift
}

package core

import (
	"sync"
	"testing"

	"lxfi/internal/caps"
	"lxfi/internal/mem"
)

// Benchmarks for the capability-check hot path: the sharded table
// lookup, the per-thread epoch-validated cache in front of it, and the
// full mediated crossing. CI's bench-smoke step runs these, and the
// crossing phases of internal/microbench report the same paths into
// BENCH_crossings.json.

func newProbeSys(tb testing.TB) (*System, *caps.Principal, mem.Addr) {
	s := NewSystem()
	s.Mon.SetMode(Enforce)
	ms := s.Caps.LoadModule("probe")
	p := ms.Instance(0x1000)
	addr := mem.Addr(0xffff880000010000)
	s.Caps.Grant(p, caps.WriteCap(addr, 4096))
	return s, p, addr
}

// BenchmarkCheckTables hits the sharded interval index directly (no
// thread cache): one shard read lock + O(log n) probe.
func BenchmarkCheckTables(b *testing.B) {
	s, p, addr := newProbeSys(b)
	c := caps.WriteCap(addr+64, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Caps.Check(p, c) {
			b.Fatal("check failed")
		}
	}
}

// BenchmarkCheckCached repeats one check through a thread's cache: an
// epoch load and a direct-mapped compare, no locks, no allocation.
func BenchmarkCheckCached(b *testing.B) {
	s, p, addr := newProbeSys(b)
	th := s.NewThread("bench")
	c := caps.WriteCap(addr+64, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !th.CheckCached(p, c) {
			b.Fatal("check failed")
		}
	}
}

// BenchmarkCheckContended8 drives table checks from 8 goroutines, each
// in its own 4 KiB bucket so the probes land on distinct shards — the
// shard-scaling story (the old global RWMutex bounced one lock word
// across every core).
func BenchmarkCheckContended8(b *testing.B) {
	s, p, addr := newProbeSys(b)
	for w := 0; w < 8; w++ {
		s.Caps.Grant(p, caps.WriteCap(addr+mem.Addr(w*2*mem.PageSize), 4096))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	workers := 8
	per := b.N/workers + 1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := caps.WriteCap(addr+mem.Addr(w*2*mem.PageSize), 8)
			for i := 0; i < per; i++ {
				if !s.Caps.Check(p, c) {
					panic("check failed")
				}
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkCrossingStore is one full mediated crossing: wrapper entry,
// guarded store (cache hit), wrapper exit.
func BenchmarkCrossingStore(b *testing.B) {
	s := NewSystem()
	s.Mon.SetMode(Enforce)
	s.RegisterKernelFunc("bench_kmalloc",
		[]Param{P("size", "size_t")},
		"post(if (return != 0) transfer(bench_alloc_caps(return)))",
		func(t *Thread, args []uint64) uint64 {
			a, err := t.Sys.Slab.Alloc(args[0])
			if err != nil {
				return 0
			}
			return uint64(a)
		})
	s.RegisterIterator("bench_alloc_caps", func(t *Thread, args []int64, emit func(caps.Cap) error) error {
		return emit(caps.WriteCap(mem.Addr(uint64(args[0])), 64))
	})
	th := s.NewThread("bench")
	var buf uint64
	m, err := s.LoadModule(ModuleSpec{
		Name: "bench", Imports: []string{"bench_kmalloc"}, DataSize: 4096,
		Funcs: []FuncSpec{
			{Name: "setup", Impl: func(t *Thread, a []uint64) uint64 {
				v, _ := t.CallKernel("bench_kmalloc", 64)
				buf = v
				return 0
			}},
			{Name: "op", Impl: func(t *Thread, a []uint64) uint64 {
				_ = t.WriteU64(mem.Addr(buf), a[0])
				return 0
			}},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := th.CallModule(m, "setup"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := th.CallModule(m, "op", uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGateSys boots the module→kernel crossing rig shared by the gate
// and named-call benchmarks: one annotated export, one module whose
// "loop" function performs n crossings through either entry point.
func benchGateSys(b *testing.B) (*Thread, *Module) {
	b.Helper()
	s := NewSystem()
	s.Mon.SetMode(Enforce)
	s.RegisterKernelFunc("bench_sink",
		[]Param{P("p", "void *"), P("n", "u64")},
		"pre(check(write, p, 8)) post(if (return == 0) check(write, p, 8))",
		func(t *Thread, args []uint64) uint64 { return 0 })
	var gSink *Gate
	m, err := s.LoadModule(ModuleSpec{
		Name: "gbench", Imports: []string{"bench_sink"}, DataSize: 4096,
		Funcs: []FuncSpec{
			{Name: "gateloop", Params: []Param{P("n", "u64"), P("p", "u64")},
				Impl: func(t *Thread, a []uint64) uint64 {
					for i := uint64(0); i < a[0]; i++ {
						if ret, err := gSink.Call2(t, a[1], 8); err != nil || ret != 0 {
							return 1
						}
					}
					return 0
				}},
			{Name: "namedloop", Params: []Param{P("n", "u64"), P("p", "u64")},
				Impl: func(t *Thread, a []uint64) uint64 {
					for i := uint64(0); i < a[0]; i++ {
						if ret, err := t.CallKernel("bench_sink", a[1], 8); err != nil || ret != 0 {
							return 1
						}
					}
					return 0
				}},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	gSink = m.Gate("bench_sink")
	return s.NewThread("bench"), m
}

// BenchmarkGateCrossing is the bound-gate module→kernel crossing: no
// symbol lookup, no argument-slice allocation, compiled pre/post
// action programs.
func BenchmarkGateCrossing(b *testing.B) {
	th, m := benchGateSys(b)
	args := []uint64{uint64(b.N), uint64(m.Data)}
	b.ReportAllocs()
	b.ResetTimer()
	if ret, err := th.CallModule(m, "gateloop", args...); err != nil || ret != 0 {
		b.Fatalf("gateloop failed: ret=%d err=%v", ret, err)
	}
}

// BenchmarkNamedCrossing is the same crossing through the string-keyed
// CallKernel path, for comparison against BenchmarkGateCrossing.
func BenchmarkNamedCrossing(b *testing.B) {
	th, m := benchGateSys(b)
	args := []uint64{uint64(b.N), uint64(m.Data)}
	b.ReportAllocs()
	b.ResetTimer()
	if ret, err := th.CallModule(m, "namedloop", args...); err != nil || ret != 0 {
		b.Fatalf("namedloop failed: ret=%d err=%v", ret, err)
	}
}

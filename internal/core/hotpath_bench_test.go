package core

import (
	"sync"
	"testing"

	"lxfi/internal/caps"
	"lxfi/internal/mem"
)

// Benchmarks for the capability-check hot path: the sharded table
// lookup, the per-thread epoch-validated cache in front of it, and the
// full mediated crossing. CI's bench-smoke step runs these, and the
// crossing phases of internal/microbench report the same paths into
// BENCH_crossings.json.

func newProbeSys(tb testing.TB) (*System, *caps.Principal, mem.Addr) {
	s := NewSystem()
	s.Mon.SetMode(Enforce)
	ms := s.Caps.LoadModule("probe")
	p := ms.Instance(0x1000)
	addr := mem.Addr(0xffff880000010000)
	s.Caps.Grant(p, caps.WriteCap(addr, 4096))
	return s, p, addr
}

// BenchmarkCheckTables hits the sharded interval index directly (no
// thread cache): one shard read lock + O(log n) probe.
func BenchmarkCheckTables(b *testing.B) {
	s, p, addr := newProbeSys(b)
	c := caps.WriteCap(addr+64, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Caps.Check(p, c) {
			b.Fatal("check failed")
		}
	}
}

// BenchmarkCheckCached repeats one check through a thread's cache: an
// epoch load and a direct-mapped compare, no locks, no allocation.
func BenchmarkCheckCached(b *testing.B) {
	s, p, addr := newProbeSys(b)
	th := s.NewThread("bench")
	c := caps.WriteCap(addr+64, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !th.CheckCached(p, c) {
			b.Fatal("check failed")
		}
	}
}

// BenchmarkCheckContended8 drives table checks from 8 goroutines, each
// in its own 4 KiB bucket so the probes land on distinct shards — the
// shard-scaling story (the old global RWMutex bounced one lock word
// across every core).
func BenchmarkCheckContended8(b *testing.B) {
	s, p, addr := newProbeSys(b)
	for w := 0; w < 8; w++ {
		s.Caps.Grant(p, caps.WriteCap(addr+mem.Addr(w*2*mem.PageSize), 4096))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	workers := 8
	per := b.N/workers + 1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := caps.WriteCap(addr+mem.Addr(w*2*mem.PageSize), 8)
			for i := 0; i < per; i++ {
				if !s.Caps.Check(p, c) {
					panic("check failed")
				}
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkCrossingStore is one full mediated crossing: wrapper entry,
// guarded store (cache hit), wrapper exit.
func BenchmarkCrossingStore(b *testing.B) {
	s := NewSystem()
	s.Mon.SetMode(Enforce)
	s.RegisterKernelFunc("bench_kmalloc",
		[]Param{P("size", "size_t")},
		"post(if (return != 0) transfer(bench_alloc_caps(return)))",
		func(t *Thread, args []uint64) uint64 {
			a, err := t.Sys.Slab.Alloc(args[0])
			if err != nil {
				return 0
			}
			return uint64(a)
		})
	s.RegisterIterator("bench_alloc_caps", func(t *Thread, args []int64, emit func(caps.Cap) error) error {
		return emit(caps.WriteCap(mem.Addr(uint64(args[0])), 64))
	})
	th := s.NewThread("bench")
	var buf uint64
	m, err := s.LoadModule(ModuleSpec{
		Name: "bench", Imports: []string{"bench_kmalloc"}, DataSize: 4096,
		Funcs: []FuncSpec{
			{Name: "setup", Impl: func(t *Thread, a []uint64) uint64 {
				v, _ := t.CallKernel("bench_kmalloc", 64)
				buf = v
				return 0
			}},
			{Name: "op", Impl: func(t *Thread, a []uint64) uint64 {
				_ = t.WriteU64(mem.Addr(buf), a[0])
				return 0
			}},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := th.CallModule(m, "setup"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := th.CallModule(m, "op", uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

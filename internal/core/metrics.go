package core

import (
	"encoding/json"

	"lxfi/internal/trace"
)

// MetricsSnapshot is the monitor's exportable metrics registry: the
// guard counters of Figure 13, the capability-system shape, the
// violation tallies, and the sampled crossing-latency histogram. It is
// what the -metrics flags of the perf tools print and what forensic
// dumps embed.
type MetricsSnapshot struct {
	Mode     string `json:"mode"`
	CapEpoch uint64 `json:"capability_epoch"`
	Shards   int    `json:"shards"`

	AnnotationActions uint64 `json:"annotation_actions"`
	FuncEntries       uint64 `json:"func_entries"`
	FuncExits         uint64 `json:"func_exits"`
	MemWriteChecks    uint64 `json:"mem_write_checks"`
	IndCallAll        uint64 `json:"ind_call_all"`
	IndCallSlow       uint64 `json:"ind_call_slow"`
	IndCacheHits      uint64 `json:"ind_cache_hits"`
	PrincipalSwitches uint64 `json:"principal_switches"`
	CapGrants         uint64 `json:"cap_grants"`
	CapRevokes        uint64 `json:"cap_revokes"`
	CapChecks         uint64 `json:"cap_checks"`
	CapCacheHits      uint64 `json:"cap_cache_hits"`
	FailedResolutions uint64 `json:"failed_resolutions"`

	// CacheHitRatio is CapCacheHits/CapChecks (0 with no checks).
	CacheHitRatio float64 `json:"cache_hit_ratio"`

	Violations         int               `json:"violations"`
	ViolationsByModule map[string]uint64 `json:"violations_by_module,omitempty"`

	// WST fast-path effectiveness (marks, probes, empty-set hits).
	WSTMarks  uint64 `json:"wst_marks"`
	WSTProbes uint64 `json:"wst_probes"`
	WSTHits   uint64 `json:"wst_hits"`

	// Latency buckets hold the sampled crossing-latency histogram;
	// LatencySamples is its total observation count.
	LatencySamples uint64         `json:"latency_samples"`
	Latency        []trace.Bucket `json:"latency,omitempty"`

	// Supervisor is the module supervisor's recovery activity, present
	// only while one is running (SetSupervisorMetrics).
	Supervisor *SupervisorMetrics `json:"supervisor,omitempty"`
}

// SupervisorMetrics is the module supervisor's slice of the registry:
// how often violations turned into restarts, what is quarantined or
// permanently dead right now, and how long recovery took
// (violation-to-successor-published, as a log2 histogram).
type SupervisorMetrics struct {
	RestartsTotal   uint64         `json:"restarts_total"`
	Quarantined     uint64         `json:"quarantined"`  // currently dead, awaiting (or undergoing) restart
	BreakerOpen     uint64         `json:"breaker_open"` // permanently dead: breaker tripped or budget exhausted
	RecoverySamples uint64         `json:"recovery_samples"`
	RecoveryP99Ns   uint64         `json:"recovery_p99_ns"`
	RecoveryNs      []trace.Bucket `json:"recovery_ns,omitempty"`
}

// Metrics captures the registry. Counters folded thread-locally
// (check/miss tallies) reach the shared atomics at wrapper exits, so a
// snapshot taken between crossings is exact; one taken mid-crossing can
// lag by at most one thread's pending batch.
func (s *System) Metrics() MetricsSnapshot {
	st := s.Mon.Stats.Snapshot()
	marks, probes, hits := s.WST.Stats()
	m := MetricsSnapshot{
		Mode:     s.Mon.Mode().String(),
		CapEpoch: s.Caps.Epoch(),
		Shards:   s.Caps.ShardCount(),

		AnnotationActions: st.AnnotationActions,
		FuncEntries:       st.FuncEntries,
		FuncExits:         st.FuncExits,
		MemWriteChecks:    st.MemWriteChecks,
		IndCallAll:        st.IndCallAll,
		IndCallSlow:       st.IndCallSlow,
		IndCacheHits:      st.IndCacheHits,
		PrincipalSwitches: st.PrincipalSwitches,
		CapGrants:         st.CapGrants,
		CapRevokes:        st.CapRevokes,
		CapChecks:         st.CapChecks,
		CapCacheHits:      st.CapCacheHits,
		FailedResolutions: st.FailedResolutions,

		Violations: len(s.Mon.Violations()),

		WSTMarks:  marks,
		WSTProbes: probes,
		WSTHits:   hits,

		LatencySamples: s.Mon.Metrics.Latency.Count(),
		Latency:        s.Mon.Metrics.Latency.Snapshot(),
	}
	if st.CapChecks != 0 {
		m.CacheHitRatio = float64(st.CapCacheHits) / float64(st.CapChecks)
	}
	if vc := s.Mon.Metrics.ViolationCounts(); len(vc) != 0 {
		m.ViolationsByModule = vc
	}
	if fp := s.supSource.Load(); fp != nil {
		m.Supervisor = (*fp)()
	}
	return m
}

// MetricsJSON renders the registry as indented JSON.
func (s *System) MetricsJSON() ([]byte, error) {
	return json.MarshalIndent(s.Metrics(), "", "  ")
}

package core

// TamperShadow corrupts the top shadow-stack frame; test-only hook used
// to demonstrate return-address CFI.
func (t *Thread) TamperShadow() { t.tamperShadow() }

// Differential tracing of the two annotation executors.
//
// The crossing pipeline has two ways to run an annotation contract:
// the expression-tree interpreter (actions.go, the original executor
// and the fallback for parameter-substituted indirect calls) and the
// bind-time compiled action programs (program.go, the hot path). The
// tracers here dry-run both on the same synthetic crossing — resolving
// conditions, capabilities, and ownership exactly as the real
// executors do, but recording grants/revokes/violations instead of
// applying them — so a test can assert the executors agree for every
// annotated export in a booted system (internal/annotdb runs that
// differential over the full Fig. 9 module set).
package core

import (
	"fmt"

	"lxfi/internal/annot"
	"lxfi/internal/caps"
)

// ActionTrace is one recorded annotation effect: Op is the action
// operator ("check", "copy", "transfer", "revoke") for applied
// actions, or "violation" with Err carrying the violation detail the
// real executor would have raised.
type ActionTrace struct {
	Op  string
	Cap string
	Err string
}

// TraceCrossing dry-runs one phase ("pre" or "post") of f's annotation
// contract for a synthetic crossing, under both executors. from is the
// principal whose ownership the phase checks. hasProg reports whether
// a compiled program exists (it always should for registered
// declarations; false means the tree fallback is in production use).
func (f *FuncDecl) TraceCrossing(t *Thread, phase string, args []uint64, ret uint64, from *caps.Principal) (tree, compiled []ActionTrace, hasProg bool) {
	return t.traceBoth(f.Name, f.Params, f.Annot, f.prog, phase, args, ret, from)
}

// TraceCrossing is the FPtrType analogue of FuncDecl.TraceCrossing.
func (ft *FPtrType) TraceCrossing(t *Thread, phase string, args []uint64, ret uint64, from *caps.Principal) (tree, compiled []ActionTrace, hasProg bool) {
	return t.traceBoth(ft.Name, ft.Params, ft.Annot, ft.prog, phase, args, ret, from)
}

// TracePrincipalValue evaluates f's principal annotation under both
// executors without materializing an instance principal. kind is the
// annotation's principal kind; for PrincipalExpr the values and error
// texts are the comparison surface.
func (f *FuncDecl) TracePrincipalValue(t *Thread, args []uint64) (kind annot.PrincipalKind, treeVal, progVal int64, treeErr, progErr error, hasProg bool) {
	return t.tracePrincipal(f.Params, f.Annot, f.prog, args)
}

// TracePrincipalValue is the FPtrType analogue.
func (ft *FPtrType) TracePrincipalValue(t *Thread, args []uint64) (kind annot.PrincipalKind, treeVal, progVal int64, treeErr, progErr error, hasProg bool) {
	return t.tracePrincipal(ft.Params, ft.Annot, ft.prog, args)
}

func (t *Thread) tracePrincipal(params []Param, set *annot.Set, prog *annotProg, args []uint64) (kind annot.PrincipalKind, treeVal, progVal int64, treeErr, progErr error, hasProg bool) {
	if set == nil {
		return annot.PrincipalDefault, 0, 0, nil, nil, prog != nil
	}
	kind = set.Principal.Kind
	if kind != annot.PrincipalExpr {
		return kind, 0, 0, nil, nil, prog != nil
	}
	env := t.getEnv(params, args)
	defer t.putEnv(env)
	treeVal, treeErr = set.Principal.Expr.Eval(env)
	if prog != nil {
		progVal, progErr = prog.prinProg.Eval(env)
		hasProg = true
	}
	return kind, treeVal, progVal, treeErr, progErr, hasProg
}

func (t *Thread) traceBoth(name string, params []Param, set *annot.Set, prog *annotProg, phase string, args []uint64, ret uint64, from *caps.Principal) (tree, compiled []ActionTrace, hasProg bool) {
	env := t.getEnv(params, args)
	defer t.putEnv(env)
	if phase == "post" {
		env.ret, env.hasRet = ret, true
	}
	var actions []*annot.Action
	if set != nil {
		actions = set.Pre
		if phase == "post" {
			actions = set.Post
		}
	}
	tree = t.traceTreeActions(phase, name, actions, env, from)
	if prog != nil {
		steps := prog.pre
		if phase == "post" {
			steps = prog.post
		}
		compiled = t.traceProgActions(phase, name, steps, env, from)
		hasProg = true
	}
	return tree, compiled, hasProg
}

// traceTreeActions mirrors runActions/runAction with recording
// effects. The violation formats are kept textually identical to the
// production executor so traces compare exactly.
func (t *Thread) traceTreeActions(phase, fnName string, actions []*annot.Action, env *argEnv, from *caps.Principal) []ActionTrace {
	var out []ActionTrace
	for _, a := range actions {
		var stop bool
		out, stop = t.traceTreeAction(phase, fnName, a, env, from, out)
		if stop {
			return out
		}
	}
	return out
}

func (t *Thread) traceTreeAction(phase, fnName string, a *annot.Action, env *argEnv, from *caps.Principal, out []ActionTrace) ([]ActionTrace, bool) {
	if a.Op == annot.If {
		v, err := a.Cond.Eval(env)
		if err != nil {
			return append(out, ActionTrace{Op: "violation",
				Err: fmt.Sprintf("%s %s: bad condition %q: %v", phase, fnName, a.Cond, err)}), true
		}
		if v == 0 {
			return out, false
		}
		return t.traceTreeAction(phase, fnName, a.Then, env, from, out)
	}
	capsList, err := t.resolveCaps(a.Caps, env, t.getCapBuf())
	defer t.putCapBuf(capsList)
	if err != nil {
		return append(out, ActionTrace{Op: "violation",
			Err: fmt.Sprintf("%s %s: %v", phase, fnName, err)}), true
	}
	for _, c := range capsList {
		var stop bool
		out, stop = t.traceCapOp(phase, fnName, a.Op, c, from, out)
		if stop {
			return out, true
		}
	}
	return out, false
}

func (t *Thread) traceProgActions(phase, fnName string, steps []actionStep, env *argEnv, from *caps.Principal) []ActionTrace {
	var out []ActionTrace
steps:
	for i := range steps {
		st := &steps[i]
		for j := range st.conds {
			v, err := st.conds[j].prog.Eval(env)
			if err != nil {
				return append(out, ActionTrace{Op: "violation",
					Err: fmt.Sprintf("%s %s: bad condition %q: %v", phase, fnName, st.conds[j].src, err)})
			}
			if v == 0 {
				continue steps
			}
		}
		if st.isIterator() {
			buf, err := t.resolveIterCaps(st, env, t.getCapBuf())
			if err != nil {
				t.putCapBuf(buf)
				return append(out, ActionTrace{Op: "violation",
					Err: fmt.Sprintf("%s %s: %v", phase, fnName, err)})
			}
			for _, c := range buf {
				var stop bool
				out, stop = t.traceCapOp(phase, fnName, st.op, c, from, out)
				if stop {
					t.putCapBuf(buf)
					return out
				}
			}
			t.putCapBuf(buf)
			continue
		}
		c, err := t.resolveStepCap(st, env)
		if err != nil {
			return append(out, ActionTrace{Op: "violation",
				Err: fmt.Sprintf("%s %s: %v", phase, fnName, err)})
		}
		var stop bool
		out, stop = t.traceCapOp(phase, fnName, st.op, c, from, out)
		if stop {
			return out
		}
	}
	return out
}

// traceCapOp records the effect of one operator on one capability.
// Ownership consults the authoritative tables directly (no per-thread
// cache) so both executors read the same verdict; nothing is granted
// or revoked.
func (t *Thread) traceCapOp(phase, fnName string, op annot.Op, c caps.Cap, from *caps.Principal, out []ActionTrace) ([]ActionTrace, bool) {
	if op == annot.Revoke {
		return append(out, ActionTrace{Op: "revoke", Cap: c.String()}), false
	}
	owned := from == nil || from.IsTrusted() || t.Sys.Caps.Check(from, c)
	if !owned {
		return append(out, ActionTrace{Op: "violation", Cap: c.String(),
			Err: fmt.Sprintf("%s %s: %s action: %s does not own %s", phase, fnName, op, from, c)}), true
	}
	return append(out, ActionTrace{Op: op.String(), Cap: c.String()}), false
}

package core

import (
	"fmt"
	"strings"

	"lxfi/internal/annot"
	"lxfi/internal/caps"
	"lxfi/internal/mem"
)

// argEnv binds a call's arguments (and, for post actions, its return
// value) to the identifiers used in annotation expressions.
type argEnv struct {
	sys    *System
	params []Param
	args   []uint64
	ret    uint64
	hasRet bool
}

// ProgArg implements annot.RunEnv: compiled programs reference
// arguments positionally, with no name scan on the hot path.
func (e *argEnv) ProgArg(i int) (int64, bool) {
	if i < len(e.args) {
		return int64(e.args[i]), true
	}
	return 0, false
}

// ProgRet implements annot.RunEnv.
func (e *argEnv) ProgRet() (int64, bool) {
	if !e.hasRet {
		return 0, false
	}
	return int64(e.ret), true
}

// Arg implements annot.Env.
func (e *argEnv) Arg(name string) (int64, bool) {
	if name == "return" {
		if !e.hasRet {
			return 0, false
		}
		return int64(e.ret), true
	}
	for i, p := range e.params {
		if p.Name == name && i < len(e.args) {
			return int64(e.args[i]), true
		}
	}
	return 0, false
}

// Const implements annot.Env.
func (e *argEnv) Const(name string) (int64, bool) {
	return e.sys.Const(name)
}

// sizeofType resolves "sizeof(*ptr)" for a parameter's declared C type:
// "struct sk_buff *" -> size of struct sk_buff in the layout registry.
func (s *System) sizeofType(typ string) (uint64, bool) {
	typ = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(typ), "*"))
	return s.Layouts.Sizeof(typ)
}

// resolveCaps materializes the capability list of one action, appending
// into out (a recycled per-thread scratch slice — crossings must not
// allocate).
func (t *Thread) resolveCaps(cl *annot.CapList, env *argEnv, out []caps.Cap) ([]caps.Cap, error) {
	if cl.IsIterator() {
		iter, ok := t.Sys.iterator(cl.Iter)
		if !ok {
			return out, fmt.Errorf("core: unknown capability iterator %q", cl.Iter)
		}
		var iargsArr [4]int64
		iargs := iargsArr[:0]
		if len(cl.IterArgs) > len(iargsArr) {
			iargs = make([]int64, 0, len(cl.IterArgs))
		}
		for _, e := range cl.IterArgs {
			v, err := e.Eval(env)
			if err != nil {
				return out, err
			}
			iargs = append(iargs, v)
		}
		err := iter(t, iargs, func(c caps.Cap) error {
			out = append(out, c)
			return nil
		})
		return out, err
	}

	ptr, err := cl.Ptr.Eval(env)
	if err != nil {
		return out, err
	}
	addr := mem.Addr(uint64(ptr))
	switch cl.Kind {
	case annot.CapCall:
		return append(out, caps.CallCap(addr)), nil
	case annot.CapRef:
		return append(out, caps.RefCap(cl.RefType, addr)), nil
	case annot.CapWrite:
		var size uint64
		if cl.Size != nil {
			v, err := cl.Size.Eval(env)
			if err != nil {
				return nil, err
			}
			if v < 0 {
				v = 0
			}
			size = uint64(v)
		} else {
			// sizeof(*ptr): look up the declared type of the parameter
			// the pointer expression names.
			ok := false
			if cl.Ptr.Ident != "" {
				for _, p := range env.params {
					if p.Name == cl.Ptr.Ident {
						size, ok = t.Sys.sizeofType(p.Type)
						break
					}
				}
			}
			if !ok {
				return out, fmt.Errorf("core: cannot resolve sizeof for %q", cl.Ptr)
			}
		}
		return append(out, caps.WriteCap(addr, size)), nil
	}
	return out, fmt.Errorf("core: bad caplist")
}

// grant gives c to principal p, updating writer sets when a WRITE
// capability lands in module hands.
func (t *Thread) grant(p *caps.Principal, c caps.Cap) {
	t.Sys.Mon.Stats.CapGrants.Add(1)
	if p == nil || p.IsTrusted() {
		return
	}
	t.Sys.Caps.Grant(p, c)
	if c.Kind == caps.Write {
		t.Sys.WST.MarkRange(c.Addr, c.Size)
	}
}

// runActions executes one pre or post action list. Ownership checks are
// made against from (the side that must already hold the capability per
// Fig. 3); copies and transfers then move capabilities from from to to.
// blame identifies the untrusted side to kill on a contract violation.
// The phase/fnName pair ("pre"/"post" plus the function) is joined only
// on the cold violation path, so the hot crossing builds no strings.
func (t *Thread) runActions(phase, fnName string, actions []*annot.Action, env *argEnv,
	from, to *caps.Principal, blame *Module) error {
	for _, a := range actions {
		if err := t.runAction(phase, fnName, a, env, from, to, blame); err != nil {
			return err
		}
	}
	return nil
}

func (t *Thread) runAction(phase, fnName string, a *annot.Action, env *argEnv,
	from, to *caps.Principal, blame *Module) error {
	if a.Op == annot.If {
		v, err := a.Cond.Eval(env)
		if err != nil {
			return t.violationAt(blame, from, "annotation", 0,
				fmt.Sprintf("%s %s: bad condition %q: %v", phase, fnName, a.Cond, err))
		}
		if v == 0 {
			return nil
		}
		return t.runAction(phase, fnName, a.Then, env, from, to, blame)
	}

	capsList, err := t.resolveCaps(a.Caps, env, t.getCapBuf())
	defer t.putCapBuf(capsList)
	if err != nil {
		return t.violationAt(blame, from, "annotation", 0, fmt.Sprintf("%s %s: %v", phase, fnName, err))
	}
	mon := &t.Sys.Mon.Stats
	for _, c := range capsList {
		mon.AnnotationActions.Add(1)
		// Revoke needs no ownership check: stripping a capability from
		// every principal can only remove rights, never add them, and the
		// failure paths that use it (e.g. readpage errors) run exactly when
		// the contract that would have justified ownership fell through.
		if a.Op == annot.Revoke {
			mon.CapRevokes.Add(1)
			t.Sys.Caps.RevokeAll(c)
			continue
		}
		// The other three operators first verify ownership on the from side
		// ("Both copy and transfer ensure that the capability is owned in
		// the first place before granting it", §3.3).
		if !t.checkCap(from, c) {
			return t.violationAt(blame, from, "annotation", c.Addr,
				fmt.Sprintf("%s %s: %s action: %s does not own %s", phase, fnName, a.Op, from, c))
		}
		switch a.Op {
		case annot.Check:
			// ownership verified above
		case annot.Copy:
			t.grant(to, c)
		case annot.Transfer:
			// Transfers revoke from *all* principals in the system so no
			// stale copies remain (§3.3), then grant to the destination.
			mon.CapRevokes.Add(1)
			t.Sys.Caps.RevokeAll(c)
			t.grant(to, c)
		}
	}
	return nil
}

// --- compiled action programs (the hot crossing path) ---

// runProgram executes one compiled pre or post action program. It is
// the program-mode twin of runActions: same ownership rules, same
// grant/revoke flow, same violation text — but conditions, pointers,
// and sizes run as opcode programs, iterators and REF cache tags are
// pre-resolved, and the inline caplist forms never touch a scratch
// slice. The differential tests in internal/annotdb hold the two
// executors equal over every annotated export in the system.
func (t *Thread) runProgram(phase, fnName string, steps []actionStep, env *argEnv,
	from, to *caps.Principal, blame *Module) error {
steps:
	for i := range steps {
		st := &steps[i]
		for j := range st.conds {
			v, err := st.conds[j].prog.Eval(env)
			if err != nil {
				return t.violationAt(blame, from, "annotation", 0,
					fmt.Sprintf("%s %s: bad condition %q: %v", phase, fnName, st.conds[j].src, err))
			}
			if v == 0 {
				continue steps
			}
		}
		if st.isIterator() {
			buf, err := t.resolveIterCaps(st, env, t.getCapBuf())
			if err != nil {
				t.putCapBuf(buf)
				return t.violationAt(blame, from, "annotation", 0,
					fmt.Sprintf("%s %s: %v", phase, fnName, err))
			}
			for _, c := range buf {
				if err := t.applyCapOp(phase, fnName, st.op, c, 0, from, to, blame); err != nil {
					t.putCapBuf(buf)
					return err
				}
			}
			t.putCapBuf(buf)
			continue
		}
		c, err := t.resolveStepCap(st, env)
		if err != nil {
			return t.violationAt(blame, from, "annotation", 0,
				fmt.Sprintf("%s %s: %v", phase, fnName, err))
		}
		if err := t.applyCapOp(phase, fnName, st.op, c, st.refTag, from, to, blame); err != nil {
			return err
		}
	}
	return nil
}

// applyCapOp applies one action operator to one resolved capability —
// the shared tail of both caplist forms. refTag, when nonzero, is the
// step's pre-interned REF cache tag; it routes the ownership check
// through the per-thread cache (REF verdicts are only cacheable with
// an exact interned identity, see refTypeTag).
func (t *Thread) applyCapOp(phase, fnName string, op annot.Op, c caps.Cap, refTag uint64,
	from, to *caps.Principal, blame *Module) error {
	mon := &t.Sys.Mon.Stats
	mon.AnnotationActions.Add(1)
	if op == annot.Revoke {
		mon.CapRevokes.Add(1)
		t.Sys.Caps.RevokeAll(c)
		return nil
	}
	var owned bool
	if c.Kind == caps.Ref && refTag != 0 {
		owned = t.checkCapTag(from, c, refTag)
	} else {
		owned = t.checkCap(from, c)
	}
	if !owned {
		return t.violationAt(blame, from, "annotation", c.Addr,
			fmt.Sprintf("%s %s: %s action: %s does not own %s", phase, fnName, op, from, c))
	}
	switch op {
	case annot.Check:
		// ownership verified above
	case annot.Copy:
		t.grant(to, c)
	case annot.Transfer:
		mon.CapRevokes.Add(1)
		t.Sys.Caps.RevokeAll(c)
		t.grant(to, c)
	}
	return nil
}

// resolveStepCap materializes the capability of an inline-form step.
func (t *Thread) resolveStepCap(st *actionStep, env *argEnv) (caps.Cap, error) {
	ptr, err := st.ptr.Eval(env)
	if err != nil {
		return caps.Cap{}, err
	}
	addr := mem.Addr(uint64(ptr))
	switch st.kind {
	case annot.CapCall:
		return caps.CallCap(addr), nil
	case annot.CapRef:
		return caps.RefCap(st.refType, addr), nil
	case annot.CapWrite:
		var size uint64
		switch {
		case st.hasSize:
			v, err := st.size.Eval(env)
			if err != nil {
				return caps.Cap{}, err
			}
			if v < 0 {
				v = 0
			}
			size = uint64(v)
		case st.sizeofVal != 0:
			size = st.sizeofVal
		case st.sizeofType != "":
			v, ok := t.Sys.sizeofType(st.sizeofType)
			if !ok {
				return caps.Cap{}, fmt.Errorf("core: cannot resolve sizeof for %q", st.src.Ptr)
			}
			size = v
		default:
			return caps.Cap{}, fmt.Errorf("core: cannot resolve sizeof for %q", st.src.Ptr)
		}
		return caps.WriteCap(addr, size), nil
	}
	return caps.Cap{}, fmt.Errorf("core: bad caplist")
}

// resolveIterCaps runs an iterator-form step, appending the emitted
// capabilities to out. The emit closure is the thread's pre-bound
// t.emit (no per-crossing closure allocation); the buffer swap is
// stack-disciplined so a re-entrant iterator cannot clobber an outer
// resolution.
func (t *Thread) resolveIterCaps(st *actionStep, env *argEnv, out []caps.Cap) ([]caps.Cap, error) {
	iter := st.iter
	if iter == nil {
		var ok bool
		iter, ok = t.Sys.iterator(st.iterName)
		if !ok {
			return out, fmt.Errorf("core: unknown capability iterator %q", st.iterName)
		}
	}
	// A local array would escape through the indirect iter call, so the
	// argument slice lives on the thread; swap it out around the run so
	// a re-entrant iterator gets a fresh one instead of clobbering ours.
	iargs := t.iargBuf
	t.iargBuf = nil
	if cap(iargs) < len(st.iterArgs) {
		iargs = make([]int64, 0, len(st.iterArgs))
	}
	iargs = iargs[:0]
	for i := range st.iterArgs {
		v, err := st.iterArgs[i].Eval(env)
		if err != nil {
			t.iargBuf = iargs
			return out, err
		}
		iargs = append(iargs, v)
	}
	saved := t.iterBuf
	t.iterBuf = out
	err := iter(t, iargs, t.emit)
	out = t.iterBuf
	t.iterBuf = saved
	t.iargBuf = iargs
	return out, err
}

// violationAt records a violation attributed to a specific module and
// principal (used when the violating side is not the thread's current
// principal, e.g. a caller failing a pre-action ownership check).
func (t *Thread) violationAt(m *Module, p *caps.Principal, op string, addr mem.Addr, detail string) error {
	v := &Violation{
		Module:    moduleName(m),
		Principal: p.String(),
		Op:        op,
		Addr:      addr,
		Detail:    detail,
	}
	t.traceViolation(v, p)
	err := t.Sys.Mon.record(v)
	if t.Sys.Mon.KillOnViolation && m != nil {
		t.Sys.killModule(m, v)
	}
	t.Sys.Mon.notifyThread(v, t)
	return err
}

// resolvePrincipal evaluates the principal annotation of a module
// function to the principal the function must run as (§3.1, §3.3).
func (t *Thread) resolvePrincipal(m *Module, set *annot.Set, env *argEnv) (*caps.Principal, error) {
	switch set.Principal.Kind {
	case annot.PrincipalGlobal:
		return m.Set.Global(), nil
	case annot.PrincipalShared, annot.PrincipalDefault:
		// "in the absence of this annotation, LXFI uses the module's
		// shared principal" (Fig. 3).
		return m.Set.Shared(), nil
	case annot.PrincipalExpr:
		v, err := set.Principal.Expr.Eval(env)
		if err != nil {
			return nil, fmt.Errorf("core: principal expression %q: %v", set.Principal.Expr, err)
		}
		return m.Set.Instance(mem.Addr(uint64(v))), nil
	}
	return nil, fmt.Errorf("core: bad principal annotation")
}

// resolvePrincipalProg is resolvePrincipal over a compiled annotation
// program (the principal expression runs as opcodes).
func (t *Thread) resolvePrincipalProg(m *Module, prog *annotProg, env *argEnv) (*caps.Principal, error) {
	switch prog.prinKind {
	case annot.PrincipalGlobal:
		return m.Set.Global(), nil
	case annot.PrincipalShared, annot.PrincipalDefault:
		return m.Set.Shared(), nil
	case annot.PrincipalExpr:
		v, err := prog.prinProg.Eval(env)
		if err != nil {
			return nil, fmt.Errorf("core: principal expression %q: %v", prog.prinSrc, err)
		}
		return m.Set.Instance(mem.Addr(uint64(v))), nil
	}
	return nil, fmt.Errorf("core: bad principal annotation")
}

// Package core implements the LXFI runtime: the reference monitor that
// mediates every control-flow transfer and every memory write between
// the simulated core kernel and kernel modules (§4 and §5 of the paper).
//
// In the original system a compiler plugin rewrites module code to call
// into the runtime at function entries/exits, memory writes, and
// indirect calls. In this reproduction the "rewriter" is the module
// loader plus the mediated Thread API: module code is written against
// Thread (its only handle on kernel memory and kernel functions), which
// places exactly the same guards at exactly the same points.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lxfi/internal/annot"
	"lxfi/internal/caps"
	"lxfi/internal/mem"
)

// Param describes one parameter of a function or function-pointer type.
// Type is the C type name ("struct sk_buff *"); it is used to resolve
// the sizeof(*ptr) default in annotations.
type Param struct {
	Name string
	Type string
}

// P is shorthand for constructing a Param.
func P(name, typ string) Param { return Param{Name: name, Type: typ} }

// Impl is the body of a simulated function. Simulated functions take and
// return machine words (addresses or integers), mirroring the uniform
// x86-64 calling convention the real LXFI interposes on.
type Impl func(t *Thread, args []uint64) uint64

// FuncDecl is a function known to the runtime: a core-kernel export, a
// module function, or attacker-controlled user code.
type FuncDecl struct {
	Name   string
	Module string // "" for core kernel; "user" for user-space code
	Params []Param
	// Annot is the function's annotation set. nil means *unannotated*:
	// per §2.2 the safe default is that modules cannot invoke it at all.
	// A non-nil empty set means "annotated as requiring nothing".
	Annot *annot.Set
	Impl  Impl
	Addr  mem.Addr

	// prog is the bind-time compiled form of Annot (program.go): the
	// action program the crossing paths execute instead of
	// re-interpreting the annotation trees per call. nil when Annot is
	// nil or could not be lowered (the tree interpreter then runs).
	prog *annotProg

	// owner is the Module instance the declaration was registered for
	// (nil for kernel and user functions). The crossing entry protocol
	// compares it against the module resolved by name: a mismatch means
	// the declaration belongs to a retired generation and the call is
	// re-bound to the successor's declaration of the same name
	// (reload.go).
	owner *Module
}

// IsKernel reports whether the function belongs to the core kernel.
func (f *FuncDecl) IsKernel() bool { return f.Module == "" }

// IsUser reports whether the function is user-space code.
func (f *FuncDecl) IsUser() bool { return f.Module == "user" }

func (f *FuncDecl) String() string {
	if f == nil {
		return "<nil func>"
	}
	where := f.Module
	if where == "" {
		where = "kernel"
	}
	return fmt.Sprintf("%s:%s@%#x", where, f.Name, uint64(f.Addr))
}

// FPtrType is a function-pointer type with annotations, e.g. the
// ndo_start_xmit member of struct net_device_ops in Fig. 4. Indirect
// calls are checked against the annotation hash of the slot's declared
// type (§4.1).
type FPtrType struct {
	Name   string
	Params []Param
	Annot  *annot.Set

	// prog is the compiled action program of Annot. Production
	// crossings run the *target function's* program; a dispatch that
	// substitutes this type's parameter list into a declaration
	// without one deliberately falls back to the tree interpreter
	// (the by-name binding is what the substitution relies on, and
	// hash equality between fn and slot annotations is not enforced
	// on the writer-free path). The differential tracers (diff.go)
	// execute prog to hold it equal to the tree.
	prog *annotProg
}

// FuncSpec describes one module function for loading.
type FuncSpec struct {
	Name   string
	Params []Param
	// Annot is an explicit annotation source, or "".
	Annot string
	// Type names an FPtrType to propagate annotations from (the loader
	// implements §4.2 "annotation propagation"). If both Annot and Type
	// are given, they must agree exactly.
	Type string
	Impl Impl
}

// ModuleSpec describes a module to be loaded.
type ModuleSpec struct {
	Name string
	// Imports lists the kernel exports in the module's symbol table. The
	// loader grants the module's shared principal CALL capabilities for
	// (the wrappers of) exactly these functions (§4.2).
	Imports []string
	Funcs   []FuncSpec
	// DataSize is the size of the module's writable sections (.data +
	// .bss). The loader grants a WRITE capability and registers the
	// module's shared principal in the writer set for this region (§5).
	DataSize uint64
	// RODataSize is the size of the module's read-only data. No WRITE
	// capability is granted for it — this is what blocks the primary RDS
	// exploit vector ("LXFI does not grant WRITE capabilities for a
	// module's read-only section", §8.1).
	RODataSize uint64
}

// Module is a loaded module.
type Module struct {
	Name    string
	Set     *caps.ModuleSet
	Funcs   map[string]*FuncDecl
	Imports []string
	// FuncTypes maps module function names to the function-pointer type
	// they instantiate (annotation propagation source), for annotation
	// accounting (Fig. 9).
	FuncTypes map[string]string

	// gates are the module's bound crossings, one per import, resolved
	// by the loader (§4.2 "Module initialization"). Immutable after
	// load; Gate hands them out.
	gates map[string]*Gate

	// Data andROData are the module's section base addresses.
	Data   mem.Addr
	ROData mem.Addr

	DataSize   uint64
	RODataSize uint64

	// dead is set when the module commits an isolation violation; every
	// subsequent interaction with it fails (the simulated analogue of
	// "the kernel panics" / the module being killed). It is atomic
	// because any thread's violation can kill a module other threads are
	// about to enter.
	dead       atomic.Bool
	killMu     sync.Mutex
	killReason *Violation

	// Lifecycle state for hot reload (reload.go): lcState moves
	// live → quiescing → retired; active counts crossings currently
	// executing inside the module (entered, not yet returned);
	// successor is the replacement generation once retired; lcWake is
	// closed and replaced on every lifecycle transition so crossings
	// parked at the gate re-check the state.
	lcState   atomic.Int32
	active    atomic.Int64
	successor atomic.Pointer[Module]
	lcWake    atomic.Pointer[chan struct{}]
}

// Dead reports whether the module has been killed after a violation.
func (m *Module) Dead() bool { return m.dead.Load() }

// Retired reports whether the module has been replaced by a reload.
// A retired module's gates are permanently stale: crossings through
// them are redirected to the successor (by-name dispatch) or refused
// (direct Gate use under enforcement).
func (m *Module) Retired() bool { return m.lcState.Load() == lcRetired }

// Quiescing reports whether a reload is draining the module.
func (m *Module) Quiescing() bool { return m.lcState.Load() == lcQuiescing }

// Successor returns the module generation that replaced this one after
// a reload, or nil.
func (m *Module) Successor() *Module { return m.successor.Load() }

// ActiveCrossings returns the number of crossings currently executing
// inside the module (diagnostics; the quiesce loop polls it).
func (m *Module) ActiveCrossings() int64 { return m.active.Load() }

// lcTransition publishes a lifecycle state and wakes every crossing
// parked on the previous wake channel so it re-checks the state.
func (m *Module) lcTransition(state int32) {
	fresh := make(chan struct{})
	m.lcState.Store(state)
	if old := m.lcWake.Swap(&fresh); old != nil {
		close(*old)
	}
}

// KillReason returns the violation that killed the module, or nil.
func (m *Module) KillReason() *Violation {
	m.killMu.Lock()
	defer m.killMu.Unlock()
	return m.killReason
}

// kill marks the module dead; the first violation wins.
func (m *Module) kill(v *Violation) {
	m.killMu.Lock()
	defer m.killMu.Unlock()
	if m.dead.Load() {
		return
	}
	m.killReason = v
	m.dead.Store(true)
}

func (m *Module) String() string { return "module " + m.Name }

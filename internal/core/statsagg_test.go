package core_test

import (
	"fmt"
	"testing"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/mem"
)

// TestConcurrentStatsAggregation: the metrics registry under concurrent
// guards. Every deterministic counter (wrapper entries/exits, principal
// switches, grants, revokes, annotation actions, checks, write guards)
// increments a fixed number of times per crossing, so N threads running
// an identical workload must land on exactly N times the single-thread
// delta — no lost updates from the batched thread-local tallies, no
// double counts from the flush-at-exit path. Cache hits are the one
// nondeterministic counter (revokes bump the epoch and wipe other
// threads' caches at arbitrary points), so they are only bounded.
func TestConcurrentStatsAggregation(t *testing.T) {
	f := newFixture(t, core.Enforce)
	sys := f.sys

	const (
		threads = 8
		rounds  = 100
	)

	work := func(th *core.Thread, args []uint64) uint64 {
		for i := uint64(0); i < args[0]; i++ {
			p, err := th.CallKernel("kmalloc", 64)
			if err != nil || p == 0 {
				return 1
			}
			if err := th.WriteU64(mem.Addr(p), i); err != nil {
				return 2
			}
			if err := th.LxfiCheck(caps.WriteCap(mem.Addr(p), 8)); err != nil {
				return 3
			}
			if _, err := th.CallKernel("kfree", p); err != nil {
				return 4
			}
		}
		return 0
	}
	m, err := sys.LoadModule(core.ModuleSpec{
		Name:     "statmod",
		Imports:  []string{"kmalloc", "kfree"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "work", Params: []core.Param{core.P("rounds", "u64")}, Impl: work},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Calibrate: one thread's exact counter delta for the workload. The
	// thread-local check tallies flush at wrapper exit, so the snapshot
	// taken after CallModule returns is exact.
	before := sys.Mon.Stats.Snapshot()
	calTh := sys.NewThread("calibrate")
	if ret, err := calTh.CallModule(m, "work", rounds); err != nil || ret != 0 {
		t.Fatalf("calibration run: ret=%d err=%v", ret, err)
	}
	unit := sys.Mon.Stats.Snapshot().Sub(before)
	for name, v := range map[string]uint64{
		"FuncEntries":       unit.FuncEntries,
		"FuncExits":         unit.FuncExits,
		"PrincipalSwitches": unit.PrincipalSwitches,
		"CapGrants":         unit.CapGrants,
		"CapRevokes":        unit.CapRevokes,
		"AnnotationActions": unit.AnnotationActions,
		"CapChecks":         unit.CapChecks,
		"MemWriteChecks":    unit.MemWriteChecks,
	} {
		if v == 0 {
			t.Fatalf("calibration delta for %s is zero; workload does not exercise it", name)
		}
	}

	// ResetStats must zero the counters without touching the violation
	// log (forensics relies on the two being independently scoped).
	sys.Mon.ResetStats()
	if z := sys.Mon.Stats.Snapshot(); z != (core.Snapshot{}) {
		t.Fatalf("ResetStats left residue: %+v", z)
	}

	rets := make([]uint64, threads)
	errs := make([]error, threads)
	var handles []*core.ThreadHandle
	for i := 0; i < threads; i++ {
		i := i
		handles = append(handles, sys.Spawn(fmt.Sprintf("stat%d", i), func(th *core.Thread) {
			rets[i], errs[i] = th.CallModule(m, "work", rounds)
		}))
	}
	for _, h := range handles {
		h.Join()
	}
	for i := 0; i < threads; i++ {
		if errs[i] != nil || rets[i] != 0 {
			t.Fatalf("thread %d: ret=%d err=%v", i, rets[i], errs[i])
		}
	}

	got := sys.Mon.Stats.Snapshot()
	checkEq := func(name string, got, unit uint64) {
		t.Helper()
		if want := unit * threads; got != want {
			t.Errorf("%s = %d under concurrency, want %d (%d threads x %d)",
				name, got, want, threads, unit)
		}
	}
	checkEq("FuncEntries", got.FuncEntries, unit.FuncEntries)
	checkEq("FuncExits", got.FuncExits, unit.FuncExits)
	checkEq("PrincipalSwitches", got.PrincipalSwitches, unit.PrincipalSwitches)
	checkEq("CapGrants", got.CapGrants, unit.CapGrants)
	checkEq("CapRevokes", got.CapRevokes, unit.CapRevokes)
	checkEq("AnnotationActions", got.AnnotationActions, unit.AnnotationActions)
	checkEq("CapChecks", got.CapChecks, unit.CapChecks)
	checkEq("MemWriteChecks", got.MemWriteChecks, unit.MemWriteChecks)

	// Cache hits depend on interleaving (every kfree revoke bumps the
	// epoch, wiping the other threads' caches mid-run) but can never
	// exceed the checks that produced them.
	if got.CapCacheHits > got.CapChecks {
		t.Errorf("CapCacheHits %d > CapChecks %d", got.CapCacheHits, got.CapChecks)
	}
	if v := sys.Mon.Violations(); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}

	// The exported registry must agree with the raw counters it wraps.
	ms := sys.Metrics()
	if ms.CapChecks != got.CapChecks || ms.FuncEntries != got.FuncEntries ||
		ms.CapGrants != got.CapGrants || ms.Violations != 0 {
		t.Errorf("Metrics() disagrees with Stats: %+v vs %+v", ms, got)
	}
}

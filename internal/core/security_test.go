package core_test

// Adversarial test matrix: every escape vector a compromised module
// might try against the reference monitor, each of which must end in a
// recorded violation (or a hard error) with no state change. These are
// the negative-space counterparts of the happy-path tests in
// core_test.go.

import (
	"errors"
	"testing"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/mem"
)

// attack describes one escape attempt. run returns a non-zero value if
// the module believes it succeeded.
type attack struct {
	name string
	// setup may register extra kernel surface; returns the module impl.
	build func(f *fixture) core.Impl
	// imports for the attacking module.
	imports []string
	// wantViolation: the monitor must record one.
	wantViolation bool
}

func TestAttackMatrix(t *testing.T) {
	attacks := []attack{
		{
			name:          "write to kernel static object",
			wantViolation: true,
			build: func(f *fixture) core.Impl {
				return func(th *core.Thread, args []uint64) uint64 {
					if err := th.WriteU64(f.victim, 0); err != nil {
						return 0
					}
					return 1
				}
			},
		},
		{
			name:          "write to another module's data section",
			wantViolation: true,
			build: func(f *fixture) core.Impl {
				other := f.loadModule(t, "bystander", nil,
					func(th *core.Thread, args []uint64) uint64 { return 0 })
				return func(th *core.Thread, args []uint64) uint64 {
					if err := th.WriteU64(other.Data, 0xEE); err != nil {
						return 0
					}
					return 1
				}
			},
		},
		{
			name:          "write to user memory directly",
			wantViolation: true,
			build: func(f *fixture) core.Impl {
				user := f.sys.User.Alloc(64, 8)
				return func(th *core.Thread, args []uint64) uint64 {
					if err := th.WriteU64(user, 7); err != nil {
						return 0
					}
					return 1
				}
			},
		},
		{
			name:          "zero a kernel page",
			wantViolation: true,
			build: func(f *fixture) core.Impl {
				return func(th *core.Thread, args []uint64) uint64 {
					if err := th.Zero(f.victim, 4096); err != nil {
						return 0
					}
					return 1
				}
			},
		},
		{
			name:          "call kernel function not in import table",
			imports:       []string{"printk"},
			wantViolation: true,
			build: func(f *fixture) core.Impl {
				return func(th *core.Thread, args []uint64) uint64 {
					if _, err := th.CallKernel("kmalloc", 64); err != nil {
						return 0
					}
					return 1
				}
			},
		},
		{
			name:          "call unannotated kernel function",
			imports:       []string{"forgotten_fn"},
			wantViolation: true,
			build: func(f *fixture) core.Impl {
				return func(th *core.Thread, args []uint64) uint64 {
					if _, err := th.CallKernel("forgotten_fn"); err != nil {
						return 0
					}
					return 1
				}
			},
		},
		{
			name:          "forge a REF capability argument",
			imports:       []string{"spin_lock_init"},
			wantViolation: true,
			build: func(f *fixture) core.Impl {
				// spin_lock_init demands WRITE ownership of the lock;
				// handing it a forged pointer to the victim fails.
				return func(th *core.Thread, args []uint64) uint64 {
					if _, err := th.CallKernel("spin_lock_init", uint64(f.victim)); err != nil {
						return 0
					}
					return 1
				}
			},
		},
		{
			name:          "indirect-call a kernel helper it cannot call",
			wantViolation: true,
			build: func(f *fixture) core.Impl {
				target, _ := f.sys.FuncByName("printk")
				return func(th *core.Thread, args []uint64) uint64 {
					if _, err := th.CallAddr(target.Addr, "ops.handler", 0, 0); err != nil {
						return 0
					}
					return 1
				}
			},
		},
		{
			name:          "double free to confuse capability revocation",
			imports:       []string{"kmalloc", "kfree"},
			wantViolation: true,
			build: func(f *fixture) core.Impl {
				return func(th *core.Thread, args []uint64) uint64 {
					p, _ := th.CallKernel("kmalloc", 64)
					if p == 0 {
						return 0
					}
					if _, err := th.CallKernel("kfree", p); err != nil {
						return 0
					}
					// Second free: the transfer's ownership check fails
					// (the capability is gone system-wide).
					if _, err := th.CallKernel("kfree", p); err != nil {
						return 0
					}
					return 1
				}
			},
		},
		{
			name:          "use freed memory after kfree",
			imports:       []string{"kmalloc", "kfree"},
			wantViolation: true,
			build: func(f *fixture) core.Impl {
				return func(th *core.Thread, args []uint64) uint64 {
					p, _ := th.CallKernel("kmalloc", 64)
					_, _ = th.CallKernel("kfree", p)
					if err := th.WriteU64(mem.Addr(p), 1); err != nil {
						return 0
					}
					return 1
				}
			},
		},
		{
			name:          "grow a WRITE capability by off-by-one",
			imports:       []string{"kmalloc"},
			wantViolation: true,
			build: func(f *fixture) core.Impl {
				return func(th *core.Thread, args []uint64) uint64 {
					p, _ := th.CallKernel("kmalloc", 64)
					// One byte past the granted region.
					if err := th.WriteU8(mem.Addr(p)+64, 0xFF); err != nil {
						return 0
					}
					return 1
				}
			},
		},
	}

	for _, a := range attacks {
		t.Run(a.name, func(t *testing.T) {
			f := newFixture(t, core.Enforce)
			impl := a.build(f)
			m := f.loadModule(t, "attacker", a.imports, impl)
			ret, _ := f.t.CallModule(m, "run", 0)
			if ret != 0 {
				t.Fatalf("attack %q believed it succeeded", a.name)
			}
			if a.wantViolation && f.sys.Mon.LastViolation() == nil {
				t.Fatalf("attack %q left no violation record", a.name)
			}
			// Victim integrity.
			if v, _ := f.sys.AS.ReadU64(f.victim); v != 1000 {
				t.Fatalf("attack %q corrupted the victim: %d", a.name, v)
			}
		})
	}
}

// TestAttackMatrixSucceedsOnStock verifies the attacks are real: on the
// stock kernel the memory-corruption ones go through.
func TestAttackMatrixSucceedsOnStock(t *testing.T) {
	f := newFixture(t, core.Off)
	m := f.loadModule(t, "attacker", nil, func(th *core.Thread, args []uint64) uint64 {
		if err := th.WriteU64(f.victim, 0); err != nil {
			return 0
		}
		return 1
	})
	ret, err := f.t.CallModule(m, "run", 0)
	if err != nil || ret != 1 {
		t.Fatalf("stock attack failed: ret=%d err=%v", ret, err)
	}
	if v, _ := f.sys.AS.ReadU64(f.victim); v != 0 {
		t.Fatal("stock kernel should have allowed the corruption")
	}
}

// TestViolationKillSwitchOff checks the configurable kill policy: with
// KillOnViolation disabled the module survives (still denied, still
// logged) — useful for the audit-only deployment mode.
func TestViolationKillSwitchOff(t *testing.T) {
	f := newFixture(t, core.Enforce)
	f.sys.Mon.KillOnViolation = false
	m := f.loadModule(t, "m", nil, func(th *core.Thread, args []uint64) uint64 {
		_ = th.WriteU64(f.victim, 0)
		return 5
	})
	ret, err := f.t.CallModule(m, "run", 0)
	if err != nil || ret != 5 {
		t.Fatalf("ret=%d err=%v", ret, err)
	}
	if m.Dead() {
		t.Fatal("module killed despite KillOnViolation=false")
	}
	if len(f.sys.Mon.Violations()) == 0 {
		t.Fatal("violation not logged")
	}
	if v, _ := f.sys.AS.ReadU64(f.victim); v != 1000 {
		t.Fatal("write still must be denied")
	}
}

// TestViolationCallback checks the OnViolation hook.
func TestViolationCallback(t *testing.T) {
	f := newFixture(t, core.Enforce)
	var seen []*core.Violation
	f.sys.Mon.OnViolation = func(v *core.Violation) { seen = append(seen, v) }
	m := f.loadModule(t, "m", nil, func(th *core.Thread, args []uint64) uint64 {
		_ = th.WriteU64(f.victim, 0)
		return 0
	})
	_, err := f.t.CallModule(m, "run", 0)
	if !errors.Is(err, core.ErrModuleDead) {
		t.Fatalf("err = %v", err)
	}
	if len(seen) != 1 || seen[0].Op != "memwrite" {
		t.Fatalf("callback saw %v", seen)
	}
}

// TestCapabilityLookupIsRangeExact probes WRITE boundaries around a
// granted region from module context (belt-and-braces on top of the
// caps unit tests, through the full guard stack).
func TestCapabilityLookupIsRangeExact(t *testing.T) {
	f := newFixture(t, core.Enforce)
	var base uint64
	m := f.loadModule(t, "m", []string{"kmalloc"}, func(th *core.Thread, args []uint64) uint64 {
		if base == 0 {
			base, _ = th.CallKernel("kmalloc", 96)
			return 0
		}
		if err := th.WriteU8(mem.Addr(args[0]), 1); err != nil {
			return 1
		}
		return 0
	})
	if _, err := f.t.CallModule(m, "run", 0); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		off     uint64
		blocked bool
	}{
		{0, false}, {95, false}, {96, true},
	}
	for _, c := range cases {
		f.sys.Mon.KillOnViolation = false
		ret, err := f.t.CallModule(m, "run", base+c.off)
		if err != nil {
			t.Fatal(err)
		}
		if (ret == 1) != c.blocked {
			t.Errorf("offset %d: blocked=%v want %v", c.off, ret == 1, c.blocked)
		}
	}
	_ = caps.WriteCap // keep import for doc reference
}

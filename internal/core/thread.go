package core

import (
	"encoding/binary"
	"fmt"

	"lxfi/internal/caps"
	"lxfi/internal/mem"
	"lxfi/internal/trace"
)

// Thread is one simulated kernel thread. It carries the LXFI per-thread
// context of §5: the current principal and the shadow stack that saves
// principals and return addresses across wrapper entries/exits and
// interrupts.
//
// Thread is also the only interface through which module code touches
// kernel memory or kernel functions — the role the compile-time rewriter
// plays in the original system.
//
// A Thread is confined to one goroutine at a time (use System.Spawn to
// run threads concurrently): its fields mirror a per-CPU context and are
// not synchronized. Everything a Thread reaches through Sys is.
type Thread struct {
	Sys  *System
	Name string

	// mon and csys are hot-path shortcuts to Sys.Mon and Sys.Caps (set
	// by System.NewThread): the per-check guards would otherwise pay two
	// dependent pointer loads before reaching the mode word or the
	// capability epoch.
	mon  *Monitor
	csys *caps.System

	// cur is the currently executing principal; nil means the core
	// kernel (fully trusted).
	cur    *caps.Principal
	curMod *Module

	shadow []frame

	// KernelDS models set_fs(KERNEL_DS): when true, uaccess routines
	// skip the user-pointer check — the kernel bug (CVE-2010-4258) that
	// the Econet exploit chains with.
	KernelDS bool

	// Task is the address of the current task_struct; maintained by the
	// kernel package.
	Task mem.Addr

	// ccache is the per-thread capability check cache (checkcache.go):
	// direct-mapped verdicts validated against the global capability
	// epoch. Like the shadow stack it is per-CPU context — unsynchronized
	// and confined to the thread's goroutine.
	ccache [checkCacheSize]checkCacheEntry

	// envFree and capFree recycle crossing scratch (argEnv objects and
	// annotation capability slices) so mediated calls do not allocate.
	envFree []*argEnv
	capFree [][]caps.Cap

	// argStack is the thread's crossing-argument stack: the Gate fast
	// calls (gate.go) push their fixed arguments here and pass a slice
	// of it down the wrapper path, so module-side crossings build no
	// argument slice. Frames nest with crossings; each call truncates
	// back to its base on return.
	argStack []uint64

	// iterBuf and emit serve capability-iterator resolution: emit is a
	// single closure bound at thread creation that appends to iterBuf,
	// so iterator-form actions do not allocate a closure per crossing
	// (resolveIterCaps swaps iterBuf stack-style around each run).
	iterBuf []caps.Cap
	emit    func(caps.Cap) error

	// iargBuf is the scratch slice for iterator arguments. A local
	// array would escape through the indirect iterator call, costing
	// one heap allocation per iterator-form crossing; resolveIterCaps
	// swaps this buffer stack-style the same way it does iterBuf.
	iargBuf []int64

	// pendChecks/pendMisses/pendMemWrites tally guard executions
	// locally; they are folded into Monitor.Stats at wrapper exits and
	// every statsFlushBatch checks (a cached hit must not pay a shared
	// atomic). Cache hits are checks minus misses.
	pendChecks    uint64
	pendMisses    uint64
	pendMemWrites uint64

	// lifeChecks/lifeMisses are the thread's monotonic lifetime check
	// tallies (pend counters roll into them at each flush); the flight
	// recorder diffs them across a crossing to stamp the event's
	// check/miss counts. Per-thread, unsynchronized.
	lifeChecks uint64
	lifeMisses uint64

	// rec is the thread's flight-recorder ring (trace.go); nil when
	// tracing is off, which keeps the crossing cost at one nil check.
	rec *trace.Ring
}

type frame struct {
	fn       *FuncDecl
	savedCur *caps.Principal
	savedMod *Module
	retToken uint64
}

// CurrentPrincipal returns the principal the thread runs as (nil for
// the core kernel).
func (t *Thread) CurrentPrincipal() *caps.Principal { return t.cur }

// CurrentModule returns the module the thread is executing, if any.
func (t *Thread) CurrentModule() *Module { return t.curMod }

// InKernel reports whether the thread runs in trusted kernel context.
func (t *Thread) InKernel() bool { return t.cur == nil }

// ShadowDepth returns the current shadow-stack depth.
func (t *Thread) ShadowDepth() int { return len(t.shadow) }

// ShadowFrame is the introspectable form of one shadow-stack frame,
// used by coredump snapshots.
type ShadowFrame struct {
	Func      string // function entered ("" for interrupt frames)
	SavedPrin string // principal saved at entry
	SavedMod  string // module saved at entry ("kernel" when none)
	RetToken  uint64
}

// ShadowFrames copies out the shadow stack, outermost frame first.
// Owner-only, like every other read of per-thread state.
func (t *Thread) ShadowFrames() []ShadowFrame {
	out := make([]ShadowFrame, len(t.shadow))
	for i, f := range t.shadow {
		sf := ShadowFrame{
			SavedPrin: f.savedCur.String(),
			SavedMod:  moduleName(f.savedMod),
			RetToken:  f.retToken,
		}
		if f.fn != nil {
			sf.Func = f.fn.Name
		}
		out[i] = sf
	}
	return out
}

func (t *Thread) violation(op string, addr mem.Addr, detail string) error {
	v := &Violation{
		Module:    moduleName(t.curMod),
		Principal: t.cur.String(),
		Op:        op,
		Addr:      addr,
		Detail:    detail,
	}
	t.traceViolation(v, t.cur)
	err := t.Sys.Mon.record(v)
	if t.Sys.Mon.KillOnViolation && t.curMod != nil {
		t.Sys.killModule(t.curMod, v)
	}
	t.Sys.Mon.notifyThread(v, t)
	return err
}

func moduleName(m *Module) string {
	if m == nil {
		return "kernel"
	}
	return m.Name
}

// --- mediated memory access ---

// checkWrite is the guard the rewriter inserts before every module
// memory write (§4.2 "Memory writes").
func (t *Thread) checkWrite(addr mem.Addr, size uint64) error {
	if t.cur == nil || !t.mon.Enforcing() {
		return nil
	}
	t.pendMemWrites++
	// The cache probe is embedded (not behind checkCap) so the guard's
	// hot path is one inlined compare chain; a cached deny re-runs the
	// authoritative check on the cold violation route below. t.cur is
	// known non-nil and a plain size has no kind-tag bits, the two
	// preconditions cacheProbe documents.
	if size>>sizeKindShift == 0 {
		if v, hit := t.cacheProbe(t.cur, addr, size, t.csys.Epoch()); hit && v {
			t.pendChecks++
			return nil
		}
	}
	if t.checkCapSlow(t.cur, caps.WriteCap(addr, size)) {
		return nil
	}
	return t.violation("memwrite", addr,
		fmt.Sprintf("no WRITE capability for [%#x,%#x)", uint64(addr), uint64(addr)+size))
}

// Write stores data at addr on behalf of the current principal.
func (t *Thread) Write(addr mem.Addr, data []byte) error {
	if err := t.checkWrite(addr, uint64(len(data))); err != nil {
		return err
	}
	return t.Sys.AS.Write(addr, data)
}

// WriteU64 stores a 64-bit little-endian value.
func (t *Thread) WriteU64(addr mem.Addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return t.Write(addr, b[:])
}

// WriteU32 stores a 32-bit little-endian value.
func (t *Thread) WriteU32(addr mem.Addr, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return t.Write(addr, b[:])
}

// WriteU16 stores a 16-bit little-endian value.
func (t *Thread) WriteU16(addr mem.Addr, v uint16) error {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	return t.Write(addr, b[:])
}

// WriteU8 stores one byte.
func (t *Thread) WriteU8(addr mem.Addr, v uint8) error {
	return t.Write(addr, []byte{v})
}

// Zero clears [addr, addr+size) on behalf of the current principal.
func (t *Thread) Zero(addr mem.Addr, size uint64) error {
	if err := t.checkWrite(addr, size); err != nil {
		return err
	}
	return t.Sys.AS.Zero(addr, size)
}

// Reads are not instrumented: LXFI targets integrity, not secrecy (§2).

// Read copies memory into buf.
func (t *Thread) Read(addr mem.Addr, buf []byte) error { return t.Sys.AS.Read(addr, buf) }

// ReadU64 loads a 64-bit value.
func (t *Thread) ReadU64(addr mem.Addr) (uint64, error) { return t.Sys.AS.ReadU64(addr) }

// ReadU32 loads a 32-bit value.
func (t *Thread) ReadU32(addr mem.Addr) (uint32, error) { return t.Sys.AS.ReadU32(addr) }

// ReadU16 loads a 16-bit value.
func (t *Thread) ReadU16(addr mem.Addr) (uint16, error) { return t.Sys.AS.ReadU16(addr) }

// ReadU8 loads one byte.
func (t *Thread) ReadU8(addr mem.Addr) (uint8, error) { return t.Sys.AS.ReadU8(addr) }

// ReadBytes loads size bytes into a fresh slice.
func (t *Thread) ReadBytes(addr mem.Addr, size uint64) ([]byte, error) {
	return t.Sys.AS.ReadBytes(addr, size)
}

// --- privileged runtime entry points used by (modified) module code ---

// LxfiCheck is lxfi_check from Fig. 4: an explicit check a module
// developer inserts before a privileged operation (Guideline 6).
func (t *Thread) LxfiCheck(c caps.Cap) error {
	if t.cur == nil || !t.mon.Enforcing() {
		return nil
	}
	if c.Size>>sizeKindShift == 0 {
		if v, hit := t.cacheProbe(t.cur, c.Addr, packSizeKind(c), t.csys.Epoch()); hit && v {
			t.pendChecks++
			return nil
		}
	}
	if t.checkCapSlow(t.cur, c) {
		return nil
	}
	return t.violation("check", c.Addr, "lxfi_check failed for "+c.String())
}

// PrincAlias is lxfi_princ_alias from §3.3: it makes alias a second
// name for the principal currently named existing. Only module code may
// call it, and (mirroring the paper's static-call requirement) callers
// must precede it with an adequate LxfiCheck.
func (t *Thread) PrincAlias(existing, alias mem.Addr) error {
	if t.curMod == nil {
		return fmt.Errorf("core: lxfi_princ_alias called outside module context")
	}
	if !t.Sys.Mon.Enforcing() {
		return nil
	}
	return t.curMod.Set.Alias(existing, alias)
}

// SwitchGlobal switches the thread to the module's global principal for
// cross-instance operations (Guideline 6); the returned function
// restores the previous principal. The module developer must guard
// callers with adequate checks — LXFI's CFI guarantees (here: Go's
// static call graph) prevent an adversary from jumping into the middle
// of such a function.
func (t *Thread) SwitchGlobal() (restore func(), err error) {
	if t.curMod == nil {
		return nil, fmt.Errorf("core: SwitchGlobal outside module context")
	}
	prev := t.cur
	t.cur = t.curMod.Set.Global()
	t.Sys.Mon.Stats.PrincipalSwitches.Add(1)
	return func() { t.cur = prev }, nil
}

// SwitchInstance switches the thread to the instance principal named by
// addr within the current module; used by module-internal privilege
// management.
func (t *Thread) SwitchInstance(addr mem.Addr) (restore func(), err error) {
	if t.curMod == nil {
		return nil, fmt.Errorf("core: SwitchInstance outside module context")
	}
	prev := t.cur
	t.cur = t.curMod.Set.Instance(addr)
	t.Sys.Mon.Stats.PrincipalSwitches.Add(1)
	return func() { t.cur = prev }, nil
}

// DropPrincipal removes the instance principal named addr (object
// destroyed). Kernel context only.
func (t *Thread) DropPrincipal(m *Module, addr mem.Addr) {
	m.Set.DropInstance(addr)
}

// Interrupt runs handler in trusted kernel context, saving the current
// principal on the shadow stack and restoring it afterwards — "if an
// interrupt comes in while a module is executing, the module's
// privileges are saved before handling the interrupt, and restored on
// interrupt exit" (§3.1).
func (t *Thread) Interrupt(handler func(*Thread)) {
	t.shadow = append(t.shadow, frame{savedCur: t.cur, savedMod: t.curMod, retToken: t.token()})
	savedDepth := len(t.shadow)
	t.cur, t.curMod = nil, nil
	handler(t)
	if len(t.shadow) != savedDepth {
		// Unbalanced shadow stack: control-flow integrity violation.
		_ = t.violation("cfi", 0, "unbalanced shadow stack across interrupt")
	}
	f := t.shadow[len(t.shadow)-1]
	t.shadow = t.shadow[:len(t.shadow)-1]
	t.cur, t.curMod = f.savedCur, f.savedMod
}

// CallerModule returns the module that entered the currently-running
// kernel function (the saved module of the innermost shadow frame), or
// nil when the kernel was not entered from module code. Kernel-function
// bodies run trusted (CurrentModule is nil there), so exports that need
// to remember who registered something use this instead.
func (t *Thread) CallerModule() *Module {
	if len(t.shadow) == 0 {
		return nil
	}
	return t.shadow[len(t.shadow)-1].savedMod
}

func (t *Thread) token() uint64 {
	return t.Sys.nextToken.Add(1)
}

// pushFrame records a wrapper entry on the shadow stack and returns the
// frame's return token.
func (t *Thread) pushFrame(fn *FuncDecl) uint64 {
	tok := t.token()
	t.shadow = append(t.shadow, frame{fn: fn, savedCur: t.cur, savedMod: t.curMod, retToken: tok})
	return tok
}

// popFrame validates the return token (return-address CFI, §5 "Shadow
// stack") and restores the saved principal. Wrapper exit is also where
// the thread's local check tallies reach the shared stats.
func (t *Thread) popFrame(tok uint64) error {
	if t.pendChecks != 0 || t.pendMemWrites != 0 {
		t.flushCheckStats()
	}
	if len(t.shadow) == 0 {
		return t.violation("cfi", 0, "shadow stack underflow")
	}
	f := t.shadow[len(t.shadow)-1]
	t.shadow = t.shadow[:len(t.shadow)-1]
	if f.retToken != tok {
		return t.violation("cfi", 0, "return address corrupted (shadow stack mismatch)")
	}
	t.cur, t.curMod = f.savedCur, f.savedMod
	return nil
}

// tamperShadow corrupts the top shadow-stack token; used only by tests
// to demonstrate return-CFI enforcement.
func (t *Thread) tamperShadow() {
	if len(t.shadow) > 0 {
		t.shadow[len(t.shadow)-1].retToken ^= 0xdead
	}
}

package core

// Goroutine-backed kernel threads.
//
// The original LXFI runs on a multi-core kernel: every CPU carries its
// own thread context and per-thread shadow stack (§5), and the monitor's
// shared state — capability tables, module registries, writer sets — is
// what the per-CPU contexts synchronize on. This file gives the
// simulation the same shape: each spawned Thread runs on its own
// goroutine, keeping its principal and shadow stack private, while every
// shared structure it touches is internally locked (see the lock-order
// notes on System and in internal/caps).
//
// A Thread remains confined to one goroutine at a time: the shadow
// stack, current principal, and KernelDS flag are deliberately
// unsynchronized, exactly like a real per-CPU context.

// ThreadHandle tracks one spawned kernel thread until it exits.
type ThreadHandle struct {
	// T is the thread the spawned goroutine runs on. It must not be used
	// by other goroutines until Join returns.
	T    *Thread
	done chan struct{}
}

// Spawn runs fn on a fresh kernel thread backed by its own goroutine and
// returns a handle to join it. The thread starts in trusted kernel
// context, like a kthread.
func (s *System) Spawn(name string, fn func(*Thread)) *ThreadHandle {
	h := &ThreadHandle{T: s.NewThread(name), done: make(chan struct{})}
	go func() {
		defer close(h.done)
		fn(h.T)
	}()
	return h
}

// Join blocks until the spawned thread's function returns.
func (h *ThreadHandle) Join() { <-h.done }

// Done exposes the completion channel for select-based waiters.
func (h *ThreadHandle) Done() <-chan struct{} { return h.done }

package annot

import "fmt"

// This file is the bind-time half of the annotation language: a
// compiler from the parsed expression trees of expr.go to flat opcode
// programs. The paper compiles annotations into checking wrappers when
// a module is loaded (§4.2); here the same move turns every c-expr
// that a crossing would otherwise re-interpret — principal selectors,
// capability pointers and sizes, if-conditions — into a small stack
// program with parameter references resolved to argument indices, so
// the per-crossing cost is a tight opcode loop instead of a recursive
// tree walk with by-name parameter lookups.
//
// Semantics are bit-identical to Expr.Eval: signed 64-bit arithmetic,
// short-circuit && and || (compiled to conditional jumps), and the
// same identifier resolution order (argument, then registered
// constant) with the same error text on unbound names. Constants fold
// to literal pushes when the compile environment exposes a bind-time
// table (ConstEnv) — core does so once its table freezes at the first
// module load — and stay runtime-resolved (opConst) otherwise, or when
// the name is not bound yet at compile time. The fuzz target
// FuzzExprProgram and the crossing differential test hold the two
// evaluators equal.

// Expression opcodes. The machine is a pure stack machine: value ops
// push one result, binary ops pop two and push one, jump ops implement
// the short-circuit logicals.
const (
	opLit    uint8 = iota // push K
	opArg                 // push args[A]; unbound → const Names[K]; else error
	opConst               // push const(Names[A]); unbound → error
	opRet                 // push return value; unbound → const "return"; else error
	opNeg                 // arithmetic negate
	opNot                 // logical not
	opBitNot              // bitwise complement
	opEq
	opNe
	opLt
	opLe
	opGt
	opGe
	opAdd
	opSub
	opMul
	opBitAnd
	opBitOr
	opBool     // pop v, push v != 0
	opJzPush0  // pop v; if v == 0 push 0 and jump to A (short-circuit &&)
	opJnzPush1 // pop v; if v != 0 push 1 and jump to A (short-circuit ||)
)

// ExprOp is one fixed-size instruction.
type ExprOp struct {
	Code uint8
	A    int32 // argument index, name index, or jump target
	K    int64 // literal value; name index for opArg's constant fallback
}

// ExprProg is a compiled expression. The zero value is an empty
// program (IsZero reports it); evaluating one is an error, mirroring
// Expr.Eval on a nil expression.
type ExprProg struct {
	Ops []ExprOp
	// Names holds identifiers that still need runtime resolution
	// (constants, and the fallback name of every argument reference).
	Names []string
	// Depth is the maximum operand-stack depth the program reaches;
	// Eval sizes its stack from it.
	Depth int
}

// IsZero reports whether the program is empty (nothing was compiled).
func (p *ExprProg) IsZero() bool { return len(p.Ops) == 0 }

// CompileEnv resolves parameter names to argument indices at compile
// time. Names it does not know stay runtime-resolved constants, the
// same fallback order Expr.Eval uses.
type CompileEnv interface {
	ParamIndex(name string) (int, bool)
}

// ConstEnv is an optional extension of CompileEnv: a bind-time
// constant table. Identifiers that resolve here (after the parameter
// check) compile to literal pushes instead of runtime opConst lookups.
// Only sound when the caller guarantees the table can no longer rebind
// a resolved name to a different value.
type ConstEnv interface {
	ConstValue(name string) (int64, bool)
}

// ParamsEnv is a CompileEnv over an ordered parameter-name list.
type ParamsEnv []string

// ParamIndex implements CompileEnv.
func (p ParamsEnv) ParamIndex(name string) (int, bool) {
	for i, n := range p {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// RunEnv supplies runtime values to a compiled program: positional
// arguments, the return value (post actions only), and registered
// constants.
type RunEnv interface {
	// ProgArg returns the value of argument i, false when the call
	// supplied fewer arguments.
	ProgArg(i int) (int64, bool)
	// ProgRet returns the call's return value, false in pre phase.
	ProgRet() (int64, bool)
	// Const resolves a symbolic constant.
	Const(name string) (int64, bool)
}

// compiler accumulates ops and tracks stack depth.
type compiler struct {
	prog  ExprProg
	depth int
}

func (c *compiler) emit(op ExprOp, delta int) {
	c.prog.Ops = append(c.prog.Ops, op)
	c.depth += delta
	if c.depth > c.prog.Depth {
		c.prog.Depth = c.depth
	}
}

func (c *compiler) name(s string) int32 {
	for i, n := range c.prog.Names {
		if n == s {
			return int32(i)
		}
	}
	c.prog.Names = append(c.prog.Names, s)
	return int32(len(c.prog.Names) - 1)
}

// Compile translates e into an opcode program whose identifier
// references are resolved against env. Shapes Expr.Eval would reject
// at runtime (nil or empty nodes, unknown operators) are compile
// errors here — callers fall back to tree interpretation for them.
func Compile(e *Expr, env CompileEnv) (ExprProg, error) {
	var c compiler
	if err := c.compile(e, env); err != nil {
		return ExprProg{}, err
	}
	return c.prog, nil
}

func (c *compiler) compile(e *Expr, env CompileEnv) error {
	switch {
	case e == nil:
		return fmt.Errorf("annot: nil expression")
	case e.Num != nil:
		c.emit(ExprOp{Code: opLit, K: *e.Num}, 1)
		return nil
	case e.Ident != "":
		if e.Ident == "return" {
			c.emit(ExprOp{Code: opRet, K: int64(c.name("return"))}, 1)
			return nil
		}
		if idx, ok := env.ParamIndex(e.Ident); ok {
			c.emit(ExprOp{Code: opArg, A: int32(idx), K: int64(c.name(e.Ident))}, 1)
			return nil
		}
		if ce, ok := env.(ConstEnv); ok {
			if v, ok := ce.ConstValue(e.Ident); ok {
				c.emit(ExprOp{Code: opLit, K: v}, 1)
				return nil
			}
		}
		c.emit(ExprOp{Code: opConst, A: c.name(e.Ident)}, 1)
		return nil
	case e.Un != nil:
		if err := c.compile(e.Un.X, env); err != nil {
			return err
		}
		var code uint8
		switch e.Un.Op {
		case "-":
			code = opNeg
		case "!":
			code = opNot
		case "~":
			code = opBitNot
		default:
			return fmt.Errorf("annot: bad unary op %q", e.Un.Op)
		}
		c.emit(ExprOp{Code: code}, 0)
		return nil
	case e.Bin != nil:
		// Short-circuit logicals become conditional jumps: the branch
		// that skips the right operand pushes the settled result, so
		// both paths meet the join with one value on the stack.
		if e.Bin.Op == "&&" || e.Bin.Op == "||" {
			if err := c.compile(e.Bin.L, env); err != nil {
				return err
			}
			code := uint8(opJzPush0)
			if e.Bin.Op == "||" {
				code = opJnzPush1
			}
			jmp := len(c.prog.Ops)
			c.emit(ExprOp{Code: code}, -1)
			if err := c.compile(e.Bin.R, env); err != nil {
				return err
			}
			c.emit(ExprOp{Code: opBool}, 0)
			c.prog.Ops[jmp].A = int32(len(c.prog.Ops))
			return nil
		}
		if err := c.compile(e.Bin.L, env); err != nil {
			return err
		}
		if err := c.compile(e.Bin.R, env); err != nil {
			return err
		}
		var code uint8
		switch e.Bin.Op {
		case "==":
			code = opEq
		case "!=":
			code = opNe
		case "<":
			code = opLt
		case "<=":
			code = opLe
		case ">":
			code = opGt
		case ">=":
			code = opGe
		case "+":
			code = opAdd
		case "-":
			code = opSub
		case "*":
			code = opMul
		case "&":
			code = opBitAnd
		case "|":
			code = opBitOr
		default:
			return fmt.Errorf("annot: bad binary op %q", e.Bin.Op)
		}
		c.emit(ExprOp{Code: code}, -1)
		return nil
	}
	return fmt.Errorf("annot: empty expression")
}

// evalStackSize is the operand stack kept on the Go stack; real
// annotation expressions stay well under it, and deeper programs fall
// back to one allocation.
const evalStackSize = 16

// Eval runs the program. The hot crossing paths call this with a
// pooled env; a program whose Depth fits evalStackSize performs no
// allocation.
func (p *ExprProg) Eval(env RunEnv) (int64, error) {
	if len(p.Ops) == 0 {
		return 0, fmt.Errorf("annot: nil expression")
	}
	var stackArr [evalStackSize]int64
	stack := stackArr[:0]
	if p.Depth > evalStackSize {
		stack = make([]int64, 0, p.Depth)
	}
	i := 0
	for i < len(p.Ops) {
		op := &p.Ops[i]
		i++
		switch op.Code {
		case opLit:
			stack = append(stack, op.K)
		case opArg:
			if v, ok := env.ProgArg(int(op.A)); ok {
				stack = append(stack, v)
				continue
			}
			name := p.Names[op.K]
			if v, ok := env.Const(name); ok {
				stack = append(stack, v)
				continue
			}
			return 0, fmt.Errorf("annot: unbound identifier %q", name)
		case opConst:
			name := p.Names[op.A]
			if v, ok := env.Const(name); ok {
				stack = append(stack, v)
				continue
			}
			return 0, fmt.Errorf("annot: unbound identifier %q", name)
		case opRet:
			if v, ok := env.ProgRet(); ok {
				stack = append(stack, v)
				continue
			}
			if v, ok := env.Const("return"); ok {
				stack = append(stack, v)
				continue
			}
			return 0, fmt.Errorf("annot: unbound identifier %q", "return")
		case opNeg:
			stack[len(stack)-1] = -stack[len(stack)-1]
		case opNot:
			stack[len(stack)-1] = b2i(stack[len(stack)-1] == 0)
		case opBitNot:
			stack[len(stack)-1] = ^stack[len(stack)-1]
		case opBool:
			stack[len(stack)-1] = b2i(stack[len(stack)-1] != 0)
		case opJzPush0:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v == 0 {
				stack = append(stack, 0)
				i = int(op.A)
			}
		case opJnzPush1:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v != 0 {
				stack = append(stack, 1)
				i = int(op.A)
			}
		default:
			l, r := stack[len(stack)-2], stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			var v int64
			switch op.Code {
			case opEq:
				v = b2i(l == r)
			case opNe:
				v = b2i(l != r)
			case opLt:
				v = b2i(l < r)
			case opLe:
				v = b2i(l <= r)
			case opGt:
				v = b2i(l > r)
			case opGe:
				v = b2i(l >= r)
			case opAdd:
				v = l + r
			case opSub:
				v = l - r
			case opMul:
				v = l * r
			case opBitAnd:
				v = l & r
			case opBitOr:
				v = l | r
			default:
				return 0, fmt.Errorf("annot: bad opcode %d", op.Code)
			}
			stack[len(stack)-1] = v
		}
	}
	return stack[len(stack)-1], nil
}

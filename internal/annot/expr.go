package annot

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a parsed c-expr from the annotation grammar (Fig. 2). It can
// reference the annotated function's arguments by name and, in post
// annotations, the special identifier "return".
type Expr struct {
	// Exactly one of the following shapes is set:
	Num   *int64 // literal
	Ident string // argument name, "return", or a registered constant
	Un    *Unary
	Bin   *Binary
}

// Unary is a unary operation.
type Unary struct {
	Op string // "-", "!", "~"
	X  *Expr
}

// Binary is a binary operation.
type Binary struct {
	Op   string // "||" "&&" "==" "!=" "<" "<=" ">" ">=" "+" "-" "*" "&" "|"
	L, R *Expr
}

// Env supplies values for identifiers during evaluation. Arg returns the
// value bound to a function argument or to the "return" identifier;
// Const resolves symbolic constants such as NETDEV_TX_BUSY.
type Env interface {
	Arg(name string) (int64, bool)
	Const(name string) (int64, bool)
}

// MapEnv is a simple Env backed by maps; used by tests and simple call
// sites.
type MapEnv struct {
	Args   map[string]int64
	Consts map[string]int64
}

// Arg implements Env.
func (m MapEnv) Arg(name string) (int64, bool) {
	v, ok := m.Args[name]
	return v, ok
}

// Const implements Env.
func (m MapEnv) Const(name string) (int64, bool) {
	v, ok := m.Consts[name]
	return v, ok
}

// Eval evaluates e in env. All arithmetic is signed 64-bit, matching the
// paper's use of expressions like "return < 0".
func (e *Expr) Eval(env Env) (int64, error) {
	switch {
	case e == nil:
		return 0, fmt.Errorf("annot: nil expression")
	case e.Num != nil:
		return *e.Num, nil
	case e.Ident != "":
		if v, ok := env.Arg(e.Ident); ok {
			return v, nil
		}
		if v, ok := env.Const(e.Ident); ok {
			return v, nil
		}
		return 0, fmt.Errorf("annot: unbound identifier %q", e.Ident)
	case e.Un != nil:
		v, err := e.Un.X.Eval(env)
		if err != nil {
			return 0, err
		}
		switch e.Un.Op {
		case "-":
			return -v, nil
		case "!":
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		case "~":
			return ^v, nil
		}
		return 0, fmt.Errorf("annot: bad unary op %q", e.Un.Op)
	case e.Bin != nil:
		l, err := e.Bin.L.Eval(env)
		if err != nil {
			return 0, err
		}
		// Short-circuit logicals.
		switch e.Bin.Op {
		case "&&":
			if l == 0 {
				return 0, nil
			}
			r, err := e.Bin.R.Eval(env)
			if err != nil {
				return 0, err
			}
			return b2i(r != 0), nil
		case "||":
			if l != 0 {
				return 1, nil
			}
			r, err := e.Bin.R.Eval(env)
			if err != nil {
				return 0, err
			}
			return b2i(r != 0), nil
		}
		r, err := e.Bin.R.Eval(env)
		if err != nil {
			return 0, err
		}
		switch e.Bin.Op {
		case "==":
			return b2i(l == r), nil
		case "!=":
			return b2i(l != r), nil
		case "<":
			return b2i(l < r), nil
		case "<=":
			return b2i(l <= r), nil
		case ">":
			return b2i(l > r), nil
		case ">=":
			return b2i(l >= r), nil
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "&":
			return l & r, nil
		case "|":
			return l | r, nil
		}
		return 0, fmt.Errorf("annot: bad binary op %q", e.Bin.Op)
	}
	return 0, fmt.Errorf("annot: empty expression")
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// String renders e canonically (fully parenthesized) so that equal
// expressions hash equally.
func (e *Expr) String() string {
	switch {
	case e == nil:
		return "<nil>"
	case e.Num != nil:
		return strconv.FormatInt(*e.Num, 10)
	case e.Ident != "":
		return e.Ident
	case e.Un != nil:
		return e.Un.Op + e.Un.X.String()
	case e.Bin != nil:
		return "(" + e.Bin.L.String() + " " + e.Bin.Op + " " + e.Bin.R.String() + ")"
	}
	return "<empty>"
}

// Idents appends every identifier referenced by e to out; used to
// validate annotations against a function's parameter list.
func (e *Expr) Idents(out []string) []string {
	switch {
	case e == nil:
		return out
	case e.Ident != "":
		return append(out, e.Ident)
	case e.Un != nil:
		return e.Un.X.Idents(out)
	case e.Bin != nil:
		return e.Bin.R.Idents(e.Bin.L.Idents(out))
	}
	return out
}

// --- expression parsing (precedence climbing) ---

func (p *parser) parseExpr() (*Expr, error) { return p.parseBin(0) }

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"&":  4,
	"==": 5, "!=": 5,
	"<": 6, "<=": 6, ">": 6, ">=": 6,
	"+": 7, "-": 7,
	"*": 8,
}

func (p *parser) parseBin(minPrec int) (*Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peek()
		prec, ok := binPrec[op.val]
		if op.kind != tokOp || !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Expr{Bin: &Binary{Op: op.val, L: lhs, R: rhs}}
	}
}

func (p *parser) parseUnary() (*Expr, error) {
	t := p.peek()
	if t.kind == tokOp && (t.val == "-" || t.val == "!" || t.val == "~") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold unary minus into literals for canonical form.
		if t.val == "-" && x.Num != nil {
			n := -*x.Num
			return &Expr{Num: &n}, nil
		}
		return &Expr{Un: &Unary{Op: t.val, X: x}}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (*Expr, error) {
	t := p.next()
	switch t.kind {
	case tokNum:
		var v int64
		var err error
		if strings.HasPrefix(t.val, "0x") || strings.HasPrefix(t.val, "0X") {
			var u uint64
			u, err = strconv.ParseUint(t.val[2:], 16, 64)
			v = int64(u)
		} else {
			v, err = strconv.ParseInt(t.val, 10, 64)
		}
		if err != nil {
			return nil, fmt.Errorf("annot: bad number %q: %v", t.val, err)
		}
		return &Expr{Num: &v}, nil
	case tokIdent:
		return &Expr{Ident: t.val}, nil
	case tokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, fmt.Errorf("annot: unexpected token %q in expression", t.val)
}

package annot

import (
	"testing"
)

// progTestEnv mirrors the core runtime's argEnv semantics for both
// evaluators: positional args for the compiled program, by-name args
// for the tree, "return" gated on hasRet, constants shared.
type progTestEnv struct {
	params []string
	args   []int64
	ret    int64
	hasRet bool
	consts map[string]int64
}

func (e *progTestEnv) Arg(name string) (int64, bool) {
	if name == "return" {
		if !e.hasRet {
			return 0, false
		}
		return e.ret, true
	}
	for i, p := range e.params {
		if p == name && i < len(e.args) {
			return e.args[i], true
		}
	}
	return 0, false
}

func (e *progTestEnv) Const(name string) (int64, bool) {
	v, ok := e.consts[name]
	return v, ok
}

func (e *progTestEnv) ProgArg(i int) (int64, bool) {
	if i < len(e.args) {
		return e.args[i], true
	}
	return 0, false
}

func (e *progTestEnv) ProgRet() (int64, bool) {
	if !e.hasRet {
		return 0, false
	}
	return e.ret, true
}

// exprsOf collects every expression in a parsed annotation set.
func exprsOf(set *Set) []*Expr {
	var out []*Expr
	if set.Principal.Kind == PrincipalExpr {
		out = append(out, set.Principal.Expr)
	}
	var walk func(a *Action)
	walk = func(a *Action) {
		if a == nil {
			return
		}
		if a.Op == If {
			out = append(out, a.Cond)
			walk(a.Then)
			return
		}
		c := a.Caps
		if c.IsIterator() {
			out = append(out, c.IterArgs...)
			return
		}
		out = append(out, c.Ptr)
		if c.Size != nil {
			out = append(out, c.Size)
		}
	}
	for _, a := range set.Pre {
		walk(a)
	}
	for _, a := range set.Post {
		walk(a)
	}
	return out
}

func defaultProgEnv() *progTestEnv {
	return &progTestEnv{
		params: []string{"a", "b", "c", "n", "addr", "buf", "p", "page", "sb", "skb", "dev", "inode", "olddir", "newdir", "cmd", "arg", "ops", "len", "flags"},
		args:   []int64{3, -7, 0, 8, 0x1000, 0x2000, 0x3000, 0x4000, 0x5000, 0x6000, 2, 0x7000, 0x8000, 0x9000, 5, 64, 0xa000, 100, 1},
		ret:    0,
		hasRet: true,
		consts: map[string]int64{"NETDEV_TX_BUSY": 16, "EINVAL": -22, "SECTOR_SIZE": 512},
	}
}

// compareExpr runs one expression through both evaluators and fails on
// any divergence in value, error-ness, or error text.
func compareExpr(t *testing.T, e *Expr, env *progTestEnv) {
	t.Helper()
	prog, cerr := Compile(e, ParamsEnv(env.params))
	if cerr != nil {
		t.Fatalf("compile failed for parser-produced expression %s: %v", e, cerr)
	}
	tv, terr := e.Eval(env)
	pv, perr := prog.Eval(env)
	if (terr == nil) != (perr == nil) {
		t.Fatalf("%s: tree err=%v, program err=%v", e, terr, perr)
	}
	if terr != nil {
		if terr.Error() != perr.Error() {
			t.Fatalf("%s: error text diverged: tree %q vs program %q", e, terr, perr)
		}
		return
	}
	if tv != pv {
		t.Fatalf("%s: tree=%d program=%d", e, tv, pv)
	}
}

var progCorpus = []string{
	"principal(sb) pre(copy(write, sb))",
	"principal(sb) pre(transfer(name_caps(buf))) post(transfer(name_caps(buf)))",
	"principal(sb) post(if (return == 0) check(write, olddir)) post(if (return == 0) check(write, newdir))",
	"principal(sb) pre(transfer(page_caps(page))) post(if (return != 0) revoke(page_caps(page)))",
	"principal(sb) pre(transfer(ref(struct page), page)) post(transfer(ref(struct page), page))",
	"pre(check(write, ops))",
	"post(if (return != 0) transfer(alloc_caps(return)))",
	"pre(check(ref(struct page), page)) pre(check(ref(block device), dev))",
	"principal(dev) pre(transfer(skb_caps(skb))) post(if (return == NETDEV_TX_BUSY) transfer(skb_caps(skb)))",
	"pre(copy(write, addr, n * 8)) post(if (return < 0 || n == 0) revoke(write, addr, n * 8))",
	"pre(check(write, buf, len + 1))",
	"pre(if (flags & 2) check(write, buf, 0x40))",
	"pre(if (!c && (a >= 3 || b != -7)) copy(call, addr))",
	"principal(~a | b) pre(check(write, a - b, -n))",
	"pre(check(write, missing_ident, 8))",
	"post(if (return) copy(write, UNKNOWN_CONST, 8))",
}

func TestProgramMatchesTreeOnCorpus(t *testing.T) {
	for _, src := range progCorpus {
		set, err := Parse(src)
		if err != nil {
			t.Fatalf("corpus entry %q failed to parse: %v", src, err)
		}
		for _, env := range []*progTestEnv{defaultProgEnv(), func() *progTestEnv {
			e := defaultProgEnv()
			e.hasRet = false
			e.args = e.args[:3] // starve most params to exercise fallbacks
			return e
		}()} {
			for _, e := range exprsOf(set) {
				compareExpr(t, e, env)
			}
		}
	}
}

func TestProgramShortCircuit(t *testing.T) {
	// The right operand of a settled logical must not be evaluated:
	// "missing" is unbound, so any evaluation of it errors.
	env := defaultProgEnv()
	for _, tc := range []struct {
		src  string
		want int64
	}{
		{"pre(if (c && missing) check(write, a, 8))", 0}, // c == 0 → short-circuit
		{"pre(if (a || missing) check(write, a, 8))", 1}, // a != 0 → short-circuit
		{"pre(if (a && n) check(write, a, 8))", 1},       // both sides run
		{"pre(if (c || 0) check(write, a, 8))", 0},       // both sides run
		{"pre(if (a && -b > c + 2) check(write, a, 8))", 1},
	} {
		set, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.src, err)
		}
		cond := set.Pre[0].Cond
		prog, err := Compile(cond, ParamsEnv(env.params))
		if err != nil {
			t.Fatalf("compile %q: %v", tc.src, err)
		}
		got, err := prog.Eval(env)
		if err != nil {
			t.Fatalf("eval %q: %v", tc.src, err)
		}
		if got != tc.want {
			t.Fatalf("%q: got %d, want %d", tc.src, got, tc.want)
		}
		compareExpr(t, cond, env)
	}
}

func TestProgramErrors(t *testing.T) {
	env := defaultProgEnv()
	if _, err := Compile(nil, ParamsEnv(env.params)); err == nil {
		t.Fatal("compiling a nil expression must fail")
	}
	if _, err := Compile(&Expr{}, ParamsEnv(env.params)); err == nil {
		t.Fatal("compiling an empty expression must fail")
	}
	empty := &ExprProg{}
	if _, err := empty.Eval(env); err == nil {
		t.Fatal("evaluating the zero program must fail")
	}
	if !empty.IsZero() {
		t.Fatal("zero program must report IsZero")
	}
}

func TestProgramDeepExpression(t *testing.T) {
	// Build an expression deeper than the inline eval stack; Eval must
	// fall back to a heap stack and still agree with the tree.
	src := "pre(check(write, a + (a + (a + (a + (a + (a + (a + (a + (a + (a + (a + (a + (a + (a + (a + (a + (a + (a + 1))))))))))))))))), 8))"
	set, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	e := set.Pre[0].Caps.Ptr
	prog, err := Compile(e, ParamsEnv([]string{"a"}))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if prog.Depth <= evalStackSize {
		t.Fatalf("test expression not deep enough: depth %d", prog.Depth)
	}
	env := &progTestEnv{params: []string{"a"}, args: []int64{2}}
	compareExpr(t, e, env)
}

package annot

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParsePaperExamples(t *testing.T) {
	// Every annotation form that appears in Fig. 3 and Fig. 4 of the
	// paper must parse.
	srcs := []string{
		"pre(copy(write, ptr, size))",
		"post(copy(write, ptr))",
		"pre(transfer(write, ptr, size))",
		"post(transfer(write, ptr, size))",
		"pre(check(write, ptr, size))",
		"pre(check(skb_iter(ptr)))",
		"pre(if (flags == 1) copy(write, buf, n))",
		"post(if (return < 0) transfer(ref(struct pci_dev), pcidev))",
		"principal(p)",
		"principal(global)",
		"principal(shared)",
		"principal(pcidev) pre(copy(ref(struct pci_dev), pcidev)) " +
			"post(if (return < 0) transfer(ref(struct pci_dev), pcidev))",
		"principal(dev) pre(transfer(skb_caps(skb))) " +
			"post(if (return == NETDEV_TX_BUSY) transfer(skb_caps(skb)))",
		"pre(check(ref(struct pci_dev), pcidev))",
	}
	for _, src := range srcs {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	srcs := []string{
		"pre",
		"pre()",
		"pre(copy(write))",
		"pre(copy(bogus, x))(",
		"pre(grant(write, x, 1))",
		"post(if (x) )",
		"frob(x)",
		"pre(check(ref(), x))",
		"principal(x) principal(y)",
		"pre(copy(write, x, 1)) @",
		"pre(check(iter()))",
	}
	for _, src := range srcs {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestEmptySet(t *testing.T) {
	s, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Empty() {
		t.Fatal("empty source should give empty set")
	}
	var nilSet *Set
	if !nilSet.Empty() {
		t.Fatal("nil set is empty")
	}
	if nilSet.String() != "" {
		t.Fatal("nil set string")
	}
}

func TestSetStructure(t *testing.T) {
	s := MustParse("principal(dev) pre(transfer(skb_caps(skb))) " +
		"post(if (return == NETDEV_TX_BUSY) transfer(skb_caps(skb)))")
	if s.Principal.Kind != PrincipalExpr || s.Principal.Expr.Ident != "dev" {
		t.Fatalf("principal = %+v", s.Principal)
	}
	if len(s.Pre) != 1 || len(s.Post) != 1 {
		t.Fatalf("pre/post = %d/%d", len(s.Pre), len(s.Post))
	}
	pre := s.Pre[0]
	if pre.Op != Transfer || !pre.Caps.IsIterator() || pre.Caps.Iter != "skb_caps" {
		t.Fatalf("pre = %v", pre)
	}
	post := s.Post[0]
	if post.Op != If || post.Then.Op != Transfer {
		t.Fatalf("post = %v", post)
	}
}

func TestParseRevoke(t *testing.T) {
	s := MustParse("pre(transfer(page_caps(page))) " +
		"post(if (return == 0) transfer(page_caps(page))) " +
		"post(if (return != 0) revoke(page_caps(page)))")
	if len(s.Post) != 2 {
		t.Fatalf("post actions = %d", len(s.Post))
	}
	fail := s.Post[1]
	if fail.Op != If || fail.Then.Op != Revoke {
		t.Fatalf("failure post = %v", fail)
	}
	if got := fail.Then.String(); got != "revoke(page_caps(page))" {
		t.Fatalf("String() = %q", got)
	}
	// revoke must round-trip through the canonical form (hash stability).
	if _, err := Parse(s.String()); err != nil {
		t.Fatalf("reparse %q: %v", s.String(), err)
	}
}

func TestRefTypeMultiWord(t *testing.T) {
	s := MustParse("pre(check(ref(struct pci_dev), pcidev))")
	cl := s.Pre[0].Caps
	if cl.Kind != CapRef || cl.RefType != "struct pci_dev" {
		t.Fatalf("caplist = %+v", cl)
	}
	s = MustParse("pre(check(ref(io port), port))")
	if s.Pre[0].Caps.RefType != "io port" {
		t.Fatalf("ref type = %q", s.Pre[0].Caps.RefType)
	}
}

func TestEval(t *testing.T) {
	env := MapEnv{
		Args:   map[string]int64{"x": 5, "y": -3, "return": -22},
		Consts: map[string]int64{"EINVAL": 22},
	}
	cases := map[string]int64{
		"x":                 5,
		"-y":                3,
		"x + y":             2,
		"x * 2 + 1":         11,
		"x < 6":             1,
		"x < 5":             0,
		"x <= 5":            1,
		"x == 5 && y == -3": 1,
		"x == 5 && y == 0":  0,
		"x == 4 || y == -3": 1,
		"!x":                0,
		"!(x == 4)":         1,
		"~0":                -1,
		"return < 0":        1,
		"return == -EINVAL": 1,
		"0x10 + 2":          18,
		"x & 1 | 2":         3,
		"(x + y) * 2":       4,
		"x - -y":            2,
	}
	for src, want := range cases {
		toks, err := lex(src)
		if err != nil {
			t.Fatalf("lex(%q): %v", src, err)
		}
		p := &parser{toks: toks}
		e, err := p.parseExpr()
		if err != nil {
			t.Fatalf("parse(%q): %v", src, err)
		}
		got, err := e.Eval(env)
		if err != nil {
			t.Fatalf("eval(%q): %v", src, err)
		}
		if got != want {
			t.Errorf("eval(%q) = %d, want %d", src, got, want)
		}
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// The right side of && / || must not be evaluated when the left side
	// decides: "undef" is unbound and would error.
	env := MapEnv{Args: map[string]int64{"x": 0}}
	for src, want := range map[string]int64{
		"x && undef":      0,
		"x == 0 || undef": 1,
	} {
		toks, _ := lex(src)
		p := &parser{toks: toks}
		e, err := p.parseExpr()
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Eval(env)
		if err != nil {
			t.Fatalf("eval(%q): %v", src, err)
		}
		if got != want {
			t.Errorf("eval(%q) = %d want %d", src, got, want)
		}
	}
}

func TestEvalUnbound(t *testing.T) {
	toks, _ := lex("nosuch + 1")
	p := &parser{toks: toks}
	e, _ := p.parseExpr()
	if _, err := e.Eval(MapEnv{}); err == nil {
		t.Fatal("unbound identifier should error")
	}
}

func TestHashStability(t *testing.T) {
	a := MustParse("pre(copy(write, ptr, size)) post(if (return < 0) transfer(write, ptr, size))")
	b := MustParse("pre( copy( write , ptr , size ) )   post(if(return<0) transfer(write, ptr, size))")
	if a.Hash() != b.Hash() {
		t.Fatalf("whitespace changed hash: %q vs %q", a, b)
	}
	c := MustParse("pre(copy(write, ptr, size)) post(if (return < 1) transfer(write, ptr, size))")
	if a.Hash() == c.Hash() {
		t.Fatal("different annotations must hash differently")
	}
	// This is the check that blocks annotation laundering through a
	// differently-annotated function pointer type (§4.1).
	d := MustParse("pre(copy(write, ptr, size))")
	if a.Hash() == d.Hash() {
		t.Fatal("subset annotation must hash differently")
	}
}

func TestIdents(t *testing.T) {
	s := MustParse("principal(dev) pre(transfer(skb_caps(skb))) " +
		"post(if (return == 0) copy(write, buf, len))")
	got := s.Idents()
	want := map[string]bool{"dev": true, "skb": true, "return": true, "buf": true, "len": true}
	if len(got) != 5 {
		t.Fatalf("idents = %v", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Errorf("unexpected ident %q", id)
		}
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	// property: Parse(s.String()).String() == s.String() for a corpus of
	// generated annotation sets.
	corpus := []string{
		"principal(sock) pre(check(call, fn)) post(copy(write, out, n))",
		"pre(if (a < b && c != 0) transfer(ref(struct bio), b))",
		"pre(check(iter_x(a, b, c)))",
		"post(if (return >= 0) copy(write, return, sz))",
	}
	for _, src := range corpus {
		s := MustParse(src)
		canon := s.String()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("reparse %q: %v", canon, err)
		}
		if s2.String() != canon {
			t.Errorf("not canonical: %q -> %q", canon, s2.String())
		}
		if s2.Hash() != s.Hash() {
			t.Errorf("hash changed through round trip for %q", src)
		}
	}
}

// Property: expression printing is canonical — parse(print(e)) == print(e)
// for randomized arithmetic expressions built from a small grammar.
func TestExprCanonicalProperty(t *testing.T) {
	ops := []string{"+", "-", "*", "==", "!=", "<", "<=", ">", ">=", "&&", "||", "&", "|"}
	vars := []string{"a", "b", "sz", "return"}
	var build func(seed uint64, depth int) string
	build = func(seed uint64, depth int) string {
		if depth == 0 || seed%4 == 0 {
			if seed%2 == 0 {
				return vars[seed%uint64(len(vars))]
			}
			return "7"
		}
		op := ops[seed%uint64(len(ops))]
		return "(" + build(seed/3, depth-1) + " " + op + " " + build(seed/7, depth-1) + ")"
	}
	f := func(seed uint64) bool {
		src := "pre(if (" + build(seed, 3) + ") check(write, a, 8))"
		s, err := Parse(src)
		if err != nil {
			return false
		}
		canon := s.String()
		s2, err := Parse(canon)
		return err == nil && s2.String() == canon && s2.Hash() == s.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringForms(t *testing.T) {
	s := MustParse("principal(global) pre(check(ref(struct sock), sk))")
	str := s.String()
	for _, want := range []string{"principal(global)", "ref(struct sock)", "sk"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

func TestNegativeLiteralFolding(t *testing.T) {
	s := MustParse("post(if (return == -16) transfer(write, p, 8))")
	if !strings.Contains(s.String(), "-16") {
		t.Fatalf("negative literal not folded: %q", s.String())
	}
	got, err := s.Post[0].Cond.Eval(MapEnv{Args: map[string]int64{"return": -16}})
	if err != nil || got != 1 {
		t.Fatalf("eval = %d, %v", got, err)
	}
}

// Package annot implements LXFI's annotation language (Fig. 2 of the
// paper):
//
//	annotation ::= pre(action) | post(action) | principal(c-expr)
//	action     ::= copy(caplist) | transfer(caplist) | check(caplist)
//	             | revoke(caplist) | if (c-expr) action
//	caplist    ::= (c, ptr, [size]) | iterator-func(c-expr)
//
// where c is one of write, call, or ref(<type>). The special principal
// names "global" and "shared" select the module's global and shared
// principals.
//
// Annotations are attached (in the original system, as clang attributes)
// to function declarations and function-pointer types. The package also
// provides the stable annotation hash used by lxfi_check_indcall to
// verify that a module has not laundered a function through a
// function-pointer type with different annotations (§4.1).
package annot

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Op is an action operator.
type Op uint8

// Action operators from the grammar.
const (
	Copy Op = iota
	Transfer
	Check
	If
	// Revoke strips the listed capabilities from every principal in the
	// system without granting them anywhere. It is the failure-path
	// counterpart of transfer: when a callee was handed a capability and
	// the call did not complete its contract (e.g. readpage returning an
	// error), revoke ensures no module retains access to an object the
	// kernel is about to recycle.
	Revoke
)

func (o Op) String() string {
	switch o {
	case Copy:
		return "copy"
	case Transfer:
		return "transfer"
	case Check:
		return "check"
	case If:
		return "if"
	case Revoke:
		return "revoke"
	}
	return "?"
}

// CapKind mirrors caps.Kind without importing it (annot stays a leaf
// package usable by the compile-time tooling).
type CapKind uint8

// Capability kinds in caplists.
const (
	CapWrite CapKind = iota
	CapRef
	CapCall
)

func (k CapKind) String() string {
	switch k {
	case CapWrite:
		return "write"
	case CapRef:
		return "ref"
	case CapCall:
		return "call"
	}
	return "?"
}

// CapList is either an inline capability spec or an iterator-func call.
type CapList struct {
	// Inline form:
	Kind    CapKind
	RefType string // for CapRef
	Ptr     *Expr
	Size    *Expr // nil means "sizeof(*ptr)", resolved by the runtime

	// Iterator form (exclusive with the above; Iter != "" selects it):
	Iter     string
	IterArgs []*Expr
}

// IsIterator reports whether the caplist is an iterator-func call.
func (c *CapList) IsIterator() bool { return c.Iter != "" }

func (c *CapList) String() string {
	if c.IsIterator() {
		args := make([]string, len(c.IterArgs))
		for i, a := range c.IterArgs {
			args[i] = a.String()
		}
		return c.Iter + "(" + strings.Join(args, ", ") + ")"
	}
	kind := c.Kind.String()
	if c.Kind == CapRef {
		kind = "ref(" + c.RefType + ")"
	}
	s := kind + ", " + c.Ptr.String()
	if c.Size != nil {
		s += ", " + c.Size.String()
	}
	return s
}

// Action is one action from the grammar.
type Action struct {
	Op   Op
	Caps *CapList // for copy/transfer/check
	Cond *Expr    // for if
	Then *Action  // for if
}

func (a *Action) String() string {
	if a.Op == If {
		return "if (" + a.Cond.String() + ") " + a.Then.String()
	}
	return a.Op.String() + "(" + a.Caps.String() + ")"
}

// PrincipalKind selects how the callee principal is named.
type PrincipalKind uint8

// Principal annotation kinds.
const (
	// PrincipalDefault: no principal annotation; the module's shared
	// principal is used (Fig. 3, last row).
	PrincipalDefault PrincipalKind = iota
	// PrincipalExpr: the principal is named by the pointer value of the
	// given expression over the function's arguments.
	PrincipalExpr
	// PrincipalGlobal selects the module's global principal.
	PrincipalGlobal
	// PrincipalShared selects the module's shared principal explicitly.
	PrincipalShared
)

// Principal is a parsed principal(...) annotation.
type Principal struct {
	Kind PrincipalKind
	Expr *Expr // for PrincipalExpr
}

func (p *Principal) String() string {
	switch p.Kind {
	case PrincipalExpr:
		return "principal(" + p.Expr.String() + ")"
	case PrincipalGlobal:
		return "principal(global)"
	case PrincipalShared:
		return "principal(shared)"
	}
	return ""
}

// Set is the full annotation set of one function or function-pointer
// type: an optional principal spec plus ordered pre and post actions.
type Set struct {
	Principal Principal
	Pre       []*Action
	Post      []*Action
}

// Empty reports whether the set carries no annotations at all.
func (s *Set) Empty() bool {
	return s == nil || (s.Principal.Kind == PrincipalDefault && len(s.Pre) == 0 && len(s.Post) == 0)
}

// String renders the set canonically; two sets with equal String() have
// equal Hash().
func (s *Set) String() string {
	if s == nil {
		return ""
	}
	var parts []string
	if p := s.Principal.String(); p != "" {
		parts = append(parts, p)
	}
	for _, a := range s.Pre {
		parts = append(parts, "pre("+a.String()+")")
	}
	for _, a := range s.Post {
		parts = append(parts, "post("+a.String()+")")
	}
	return strings.Join(parts, " ")
}

// Hash returns the stable annotation hash ("ahash" in §4.1) used to
// compare a function's annotations against a function-pointer type's
// annotations at indirect call sites.
func (s *Set) Hash() uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s.String()))
	return h.Sum64()
}

// Idents returns every identifier referenced anywhere in the set.
func (s *Set) Idents() []string {
	var out []string
	if s == nil {
		return out
	}
	if s.Principal.Kind == PrincipalExpr {
		out = s.Principal.Expr.Idents(out)
	}
	var walk func(a *Action)
	walk = func(a *Action) {
		if a == nil {
			return
		}
		if a.Op == If {
			out = a.Cond.Idents(out)
			walk(a.Then)
			return
		}
		c := a.Caps
		if c.IsIterator() {
			for _, e := range c.IterArgs {
				out = e.Idents(out)
			}
			return
		}
		out = c.Ptr.Idents(out)
		if c.Size != nil {
			out = c.Size.Idents(out)
		}
	}
	for _, a := range s.Pre {
		walk(a)
	}
	for _, a := range s.Post {
		walk(a)
	}
	return out
}

// --- lexer ---

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNum
	tokOp
	tokLParen
	tokRParen
	tokComma
)

type token struct {
	kind tokKind
	val  string
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentCont(src[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		case c >= '0' && c <= '9':
			j := i
			if c == '0' && j+1 < len(src) && (src[j+1] == 'x' || src[j+1] == 'X') {
				j += 2
				for j < len(src) && isHex(src[j]) {
					j++
				}
			} else {
				for j < len(src) && src[j] >= '0' && src[j] <= '9' {
					j++
				}
			}
			toks = append(toks, token{tokNum, src[i:j], i})
			i = j
		default:
			// Multi-char operators first.
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||":
				toks = append(toks, token{tokOp, two, i})
				i += 2
				continue
			}
			switch c {
			case '<', '>', '+', '-', '*', '&', '|', '!', '~':
				toks = append(toks, token{tokOp, string(c), i})
				i++
			default:
				return nil, fmt.Errorf("annot: illegal character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }
func isHex(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// --- parser ---

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k tokKind, what string) error {
	t := p.next()
	if t.kind != k {
		return fmt.Errorf("annot: expected %s at offset %d, got %q", what, t.pos, t.val)
	}
	return nil
}

// Parse parses a whitespace-separated sequence of annotations into a
// Set. An empty string yields an empty (but non-nil) Set.
func Parse(src string) (*Set, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	set := &Set{}
	for p.peek().kind != tokEOF {
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("annot: expected annotation keyword at offset %d, got %q", t.pos, t.val)
		}
		switch t.val {
		case "pre", "post":
			if err := p.expect(tokLParen, "("); err != nil {
				return nil, err
			}
			a, err := p.parseAction()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokRParen, ")"); err != nil {
				return nil, err
			}
			if t.val == "pre" {
				set.Pre = append(set.Pre, a)
			} else {
				set.Post = append(set.Post, a)
			}
		case "principal":
			if set.Principal.Kind != PrincipalDefault {
				return nil, fmt.Errorf("annot: duplicate principal annotation")
			}
			if err := p.expect(tokLParen, "("); err != nil {
				return nil, err
			}
			switch pt := p.peek(); {
			case pt.kind == tokIdent && pt.val == "global":
				p.next()
				set.Principal = Principal{Kind: PrincipalGlobal}
			case pt.kind == tokIdent && pt.val == "shared":
				p.next()
				set.Principal = Principal{Kind: PrincipalShared}
			default:
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				set.Principal = Principal{Kind: PrincipalExpr, Expr: e}
			}
			if err := p.expect(tokRParen, ")"); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("annot: unknown annotation %q at offset %d", t.val, t.pos)
		}
	}
	return set, nil
}

// MustParse is Parse that panics on error; for static annotation tables.
func MustParse(src string) *Set {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

func (p *parser) parseAction() (*Action, error) {
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("annot: expected action at offset %d, got %q", t.pos, t.val)
	}
	switch t.val {
	case "copy", "transfer", "check", "revoke":
		op := map[string]Op{"copy": Copy, "transfer": Transfer, "check": Check, "revoke": Revoke}[t.val]
		if err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		cl, err := p.parseCapList()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return &Action{Op: op, Caps: cl}, nil
	case "if":
		if err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		then, err := p.parseAction()
		if err != nil {
			return nil, err
		}
		return &Action{Op: If, Cond: cond, Then: then}, nil
	}
	return nil, fmt.Errorf("annot: unknown action %q at offset %d", t.val, t.pos)
}

func (p *parser) parseCapList() (*CapList, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("annot: expected caplist at offset %d, got %q", t.pos, t.val)
	}
	switch t.val {
	case "write", "call":
		p.next()
		kind := CapWrite
		if t.val == "call" {
			kind = CapCall
		}
		if err := p.expect(tokComma, ","); err != nil {
			return nil, err
		}
		return p.finishInline(&CapList{Kind: kind})
	case "ref":
		p.next()
		if err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		typ, err := p.parseRefType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokComma, ","); err != nil {
			return nil, err
		}
		return p.finishInline(&CapList{Kind: CapRef, RefType: typ})
	default:
		// iterator-func(args...)
		name := p.next().val
		if err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		var args []*Expr
		if p.peek().kind != tokRParen {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, e)
				if p.peek().kind != tokComma {
					break
				}
				p.next()
			}
		}
		if err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		if len(args) == 0 {
			return nil, fmt.Errorf("annot: iterator %q needs at least one argument", name)
		}
		return &CapList{Iter: name, IterArgs: args}, nil
	}
}

// parseRefType consumes tokens until the closing paren of ref(...),
// allowing multi-token C type names like "struct pci_dev".
func (p *parser) parseRefType() (string, error) {
	var words []string
	for {
		t := p.peek()
		switch t.kind {
		case tokIdent, tokNum:
			words = append(words, t.val)
			p.next()
		case tokOp:
			if t.val == "*" { // pointer types
				words = append(words, "*")
				p.next()
				continue
			}
			return "", fmt.Errorf("annot: bad token %q in ref type", t.val)
		case tokRParen:
			if len(words) == 0 {
				return "", fmt.Errorf("annot: empty ref type")
			}
			p.next()
			return strings.Join(words, " "), nil
		default:
			return "", fmt.Errorf("annot: bad token %q in ref type", t.val)
		}
	}
}

func (p *parser) finishInline(cl *CapList) (*CapList, error) {
	ptr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	cl.Ptr = ptr
	if p.peek().kind == tokComma {
		p.next()
		size, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		cl.Size = size
	}
	return cl, nil
}

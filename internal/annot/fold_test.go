package annot

import "testing"

// foldEnv is a CompileEnv that also exposes a bind-time constant
// table, the shape core hands the compiler once its table freezes.
type foldEnv struct {
	ParamsEnv
	consts map[string]int64
}

func (e foldEnv) ConstValue(name string) (int64, bool) {
	v, ok := e.consts[name]
	return v, ok
}

// condExpr parses src as an if-condition and returns its expression
// tree (the package exports no bare-expression parser).
func condExpr(t *testing.T, src string) *Expr {
	t.Helper()
	set, err := Parse("pre(if (" + src + ") check(write, n, 8))")
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return set.Pre[0].Cond
}

// TestCompileFoldsFrozenConsts pins the bind-time constant fold: an
// identifier resolved through ConstEnv compiles to a literal, so the
// program evaluates without any runtime constant lookup — while names
// the table does not know at compile time keep the opConst fallback.
func TestCompileFoldsFrozenConsts(t *testing.T) {
	e := condExpr(t, "n + KNOWN * 2")
	env := foldEnv{ParamsEnv: ParamsEnv{"n"}, consts: map[string]int64{"KNOWN": 7}}
	prog, err := Compile(e, env)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range prog.Ops {
		if op.Code == opConst {
			t.Fatalf("KNOWN was not folded: %+v", prog.Ops)
		}
	}
	// The run env's constant table is empty: only the folded literal can
	// supply KNOWN's value.
	run := &progTestEnv{params: []string{"n"}, args: []int64{1}}
	got, err := prog.Eval(run)
	if err != nil || got != 15 {
		t.Fatalf("folded eval = %d, %v; want 15", got, err)
	}

	// A name missing from the bind-time table stays runtime-resolved.
	e2 := condExpr(t, "LATE + 1")
	prog2, err := Compile(e2, env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog2.Eval(run); err == nil {
		t.Fatal("unbound LATE did not error at runtime")
	}
	run.consts = map[string]int64{"LATE": 41}
	if got, err := prog2.Eval(run); err != nil || got != 42 {
		t.Fatalf("late-bound eval = %d, %v; want 42", got, err)
	}

	// The parameter namespace shadows the constant table, same as the
	// tree interpreter's resolution order.
	e3 := condExpr(t, "n")
	prog3, err := Compile(e3, foldEnv{ParamsEnv: ParamsEnv{"n"}, consts: map[string]int64{"n": 99}})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := prog3.Eval(run); err != nil || got != 1 {
		t.Fatalf("param-shadowed eval = %d, %v; want arg value 1", got, err)
	}
}

package annot

import "testing"

// FuzzExprProgram drives the parse → compile → execute pipeline with
// arbitrary annotation source and asserts the compiled program agrees
// with the tree interpreter on every expression in the parsed set:
// same value, same error-ness, same error text, and no panics from
// either side. CI runs a short -fuzz smoke on top of the checked-in
// corpus below.
func FuzzExprProgram(f *testing.F) {
	for _, src := range progCorpus {
		f.Add(src, int64(0), true, uint8(19))
		f.Add(src, int64(-1), false, uint8(2))
	}
	f.Add("principal(a * b - -c) pre(if (a <= b != c) transfer(skb_caps(a & b | ~c)))", int64(16), true, uint8(19))
	f.Add("pre(check(write, 0x7fffffffffffffff + 1, a - 0x8000000000000000))", int64(2), true, uint8(1))
	f.Fuzz(func(t *testing.T, src string, ret int64, hasRet bool, nargs uint8) {
		set, err := Parse(src)
		if err != nil {
			return
		}
		env := defaultProgEnv()
		env.ret, env.hasRet = ret, hasRet
		if n := int(nargs) % (len(env.args) + 1); n < len(env.args) {
			env.args = env.args[:n]
		}
		for _, e := range exprsOf(set) {
			prog, cerr := Compile(e, ParamsEnv(env.params))
			if cerr != nil {
				t.Fatalf("parser-produced expression %s failed to compile: %v", e, cerr)
			}
			tv, terr := e.Eval(env)
			pv, perr := prog.Eval(env)
			if (terr == nil) != (perr == nil) {
				t.Fatalf("%s: tree err=%v, program err=%v", e, terr, perr)
			}
			if terr != nil {
				if terr.Error() != perr.Error() {
					t.Fatalf("%s: error text diverged: %q vs %q", e, terr, perr)
				}
				continue
			}
			if tv != pv {
				t.Fatalf("%s: tree=%d program=%d", e, tv, pv)
			}
		}
	})
}

package failpoint

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestDisarmedIsNoop(t *testing.T) {
	defer DisarmAll()
	Register("t.noop")
	if err := Inject("t.noop"); err != nil {
		t.Fatalf("disarmed site returned %v", err)
	}
	if Armed() {
		t.Fatal("nothing armed, Armed() = true")
	}
	// An unregistered site is a no-op too (arming may race substrate
	// init in either order).
	if err := Inject("t.never-registered"); err != nil {
		t.Fatalf("unregistered site returned %v", err)
	}
}

func TestErrorPolicy(t *testing.T) {
	defer DisarmAll()
	Arm("t.err", Policy{Msg: "boom"})
	err := Inject("t.err")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	custom := errors.New("custom fault")
	Arm("t.err", Policy{Err: custom})
	err = Inject("t.err")
	if !errors.Is(err, ErrInjected) || !errors.Is(err, custom) {
		t.Fatalf("want both ErrInjected and custom in chain, got %v", err)
	}
}

func TestOneShot(t *testing.T) {
	defer DisarmAll()
	Arm("t.oneshot", Policy{OneShot: true})
	if err := Inject("t.oneshot"); err == nil {
		t.Fatal("first evaluation did not fire")
	}
	for i := 0; i < 10; i++ {
		if err := Inject("t.oneshot"); err != nil {
			t.Fatalf("one-shot fired twice: %v", err)
		}
	}
	// Re-arming resets the shot.
	Arm("t.oneshot", Policy{OneShot: true})
	if err := Inject("t.oneshot"); err == nil {
		t.Fatal("re-armed one-shot did not fire")
	}
}

func TestEveryNth(t *testing.T) {
	defer DisarmAll()
	Arm("t.nth", Policy{EveryNth: 3})
	fired := 0
	for i := 0; i < 9; i++ {
		if Inject("t.nth") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("every(3) over 9 evaluations fired %d times, want 3", fired)
	}
}

func TestArgFilter(t *testing.T) {
	defer DisarmAll()
	Arm("t.arg", Policy{Arg: "kmalloc"})
	if err := InjectArg("t.arg", "kfree"); err != nil {
		t.Fatalf("non-matching arg fired: %v", err)
	}
	if err := InjectArg("t.arg", "kmalloc"); err == nil {
		t.Fatal("matching arg did not fire")
	}
}

func TestPanicPolicy(t *testing.T) {
	defer DisarmAll()
	Arm("t.panic", Policy{Panic: true, Msg: "oops"})
	defer func() {
		rec := recover()
		pv, ok := rec.(PanicValue)
		if !ok || pv.Site != "t.panic" {
			t.Fatalf("want PanicValue{t.panic}, got %#v", rec)
		}
	}()
	Inject("t.panic")
	t.Fatal("panic policy did not panic")
}

func TestDoPolicy(t *testing.T) {
	defer DisarmAll()
	var got string
	Arm("t.do", Policy{Do: func(arg string) error {
		got = arg
		return fmt.Errorf("from do")
	}})
	if err := InjectArg("t.do", "payload"); err == nil || got != "payload" {
		t.Fatalf("Do callback: err=%v got=%q", err, got)
	}
}

func TestDelayPolicy(t *testing.T) {
	defer DisarmAll()
	Arm("t.delay", Policy{Delay: 10 * time.Millisecond})
	start := time.Now()
	if err := Inject("t.delay"); err != nil {
		t.Fatalf("delay policy returned error %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("delay policy slept only %v", d)
	}
}

func TestArmSpec(t *testing.T) {
	defer DisarmAll()
	spec := "t.spec.a=error; t.spec.b=every(2)->error(slow disk) ;t.spec.c[kmalloc]=oneshot->panic(no memory);t.spec.d=delay(1ms)"
	if err := ArmSpec(spec); err != nil {
		t.Fatal(err)
	}
	if err := Inject("t.spec.a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("t.spec.a: %v", err)
	}
	if err := Inject("t.spec.b"); err != nil {
		t.Fatalf("t.spec.b fired on first evaluation: %v", err)
	}
	if err := Inject("t.spec.b"); err == nil {
		t.Fatal("t.spec.b did not fire on second evaluation")
	}
	if err := InjectArg("t.spec.c", "kfree"); err != nil {
		t.Fatalf("t.spec.c fired on wrong arg: %v", err)
	}
	func() {
		defer func() {
			pv, ok := recover().(PanicValue)
			if !ok || pv.Msg != "no memory" {
				t.Fatalf("t.spec.c: want panic 'no memory', got %#v", pv)
			}
		}()
		InjectArg("t.spec.c", "kmalloc")
	}()
	for _, bad := range []string{
		"nosign", "=error", "a=warp(3)", "a=every(x)->error", "a=prob(2)->error",
		"a[unclosed=error", "a=delay(-1s)",
	} {
		if err := ArmSpec(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}

func TestSitesSorted(t *testing.T) {
	defer DisarmAll()
	Register("t.z")
	Register("t.a")
	names := Sites()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Sites() not sorted/unique: %v", names)
		}
	}
}

func TestConcurrentArmInject(t *testing.T) {
	defer DisarmAll()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				Inject("t.race")
				InjectArg("t.race", "x")
			}
		}()
	}
	for i := 0; i < 200; i++ {
		Arm("t.race", Policy{EveryNth: 2})
		Disarm("t.race")
	}
	close(stop)
	wg.Wait()
}

func BenchmarkInjectDisarmed(b *testing.B) {
	Register("bench.disarmed")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Inject("bench.disarmed"); err != nil {
			b.Fatal(err)
		}
	}
}

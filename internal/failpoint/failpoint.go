// Package failpoint is a tiny registry of named fault-injection sites
// threaded through the kernel substrates at their natural seams:
// blockdev sector I/O, netstack xmit/poll, slab page allocation, the
// mediated kernel-export entry, and the module loader's lifecycle
// steps.
//
// A site is a single call — failpoint.Inject("blockdev.write_sector")
// — that does nothing until armed. Disarmed sites cost one atomic load
// and zero allocations, so they are compiled into production paths
// (the 0-alloc warm-crossing and trace-overhead perf gates hold with
// every site in place). Armed sites evaluate a per-site Policy: return
// an injected error, sleep, panic (simulating a module bug that oopses
// — the call gates contain it into a synthetic violation), or run an
// arbitrary test callback; firing is shaped by one-shot, every-Nth,
// probability, and argument-match triggers.
//
// Site names follow the "<package>.<seam>" convention (the catalog
// lives in PAPER.md): the package that owns the seam registers the
// site at init so chaos harnesses can enumerate Sites(), and passes a
// per-call argument (device name, kernel function name, module name)
// that policies can match with Arg.
//
// Sites are armed per-test with Arm/Disarm, or process-wide through
// the spec language of ArmSpec — also read from the LXFI_FAILPOINTS
// environment variable at startup, which is how CI arms the chaos
// battery:
//
//	LXFI_FAILPOINTS="blockdev.write_sector=every(50)->error;kernel.entry[kmalloc]=oneshot->panic"
package failpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is wrapped by every error an armed error-policy site
// returns, so callers and tests can errors.Is an injected fault apart
// from a real one.
var ErrInjected = errors.New("failpoint: injected fault")

// PanicValue is what an armed panic-policy site panics with. The call
// gates recover it (like any other panic raised inside a module
// crossing) into a synthetic violation; tests can assert on the Site.
type PanicValue struct {
	Site string
	Msg  string
}

func (p PanicValue) String() string {
	if p.Msg != "" {
		return fmt.Sprintf("failpoint %s: %s", p.Site, p.Msg)
	}
	return "failpoint " + p.Site
}

// Policy describes what an armed site does and when it fires. Exactly
// one action is used, checked in order: Do, Delay, Panic, error (the
// default — Err, or ErrInjected when Err is nil). All trigger fields
// are optional and combine conjunctively.
type Policy struct {
	// Err, when set, is the error an error-action site returns
	// (wrapped together with ErrInjected). Nil selects ErrInjected.
	Err error
	// Delay sleeps for the duration, then the call proceeds normally.
	Delay time.Duration
	// Panic panics with a PanicValue. Meant for module-mediated seams
	// (kernel.entry), where the call gates contain the panic; at a
	// kernel-context seam it is a kernel panic, exactly as in the real
	// thing.
	Panic bool
	// Msg annotates the injected error or panic.
	Msg string
	// Do runs an arbitrary callback instead of any built-in action
	// (tests only — not reachable from the spec language). The arg is
	// the Inject call's site argument.
	Do func(arg string) error

	// OneShot fires the site once, then never again until re-armed.
	OneShot bool
	// EveryNth fires on every Nth evaluation (1 or 0 = every time).
	EveryNth int64
	// Prob fires with the given probability in (0, 1); 0 disables the
	// probability trigger.
	Prob float64
	// Arg, when non-empty, fires only when the InjectArg call's
	// argument matches exactly.
	Arg string
}

// armedPolicy is a Policy plus its runtime trigger counters; a fresh
// one is built per Arm so re-arming resets one-shot and every-Nth
// state.
type armedPolicy struct {
	p     Policy
	err   error // precomputed wrapped error for the error action
	n     atomic.Int64
	fired atomic.Bool
}

var (
	// armed counts armed sites; the disarmed fast path is this single
	// load.
	armed atomic.Int64

	mu    sync.RWMutex
	sites = make(map[string]*siteState)
)

type siteState struct {
	pol atomic.Pointer[armedPolicy]
}

// Register declares a site so harnesses can enumerate it with Sites().
// Substrates call it from init (or their Init); registration is
// idempotent and arming implies it.
func Register(name string) {
	mu.Lock()
	if _, ok := sites[name]; !ok {
		sites[name] = &siteState{}
	}
	mu.Unlock()
}

// Sites returns every registered site name, sorted.
func Sites() []string {
	mu.RLock()
	out := make([]string, 0, len(sites))
	for n := range sites {
		out = append(out, n)
	}
	mu.RUnlock()
	sort.Strings(out)
	return out
}

// Arm installs a policy on a site (registering it if needed),
// replacing any previous policy and resetting trigger state.
func Arm(name string, p Policy) {
	ap := &armedPolicy{p: p}
	if !p.Panic && p.Do == nil && p.Delay == 0 {
		e := p.Err
		if e == nil {
			e = ErrInjected
		}
		if p.Msg != "" {
			ap.err = fmt.Errorf("%w at %s: %s", e, name, p.Msg)
		} else {
			ap.err = fmt.Errorf("%w at %s", e, name)
		}
		if p.Err != nil {
			// Keep both ErrInjected and the caller's error in the chain.
			ap.err = fmt.Errorf("%w: %w", ErrInjected, ap.err)
		}
	}
	mu.Lock()
	s, ok := sites[name]
	if !ok {
		s = &siteState{}
		sites[name] = s
	}
	mu.Unlock()
	if s.pol.Swap(ap) == nil {
		armed.Add(1)
	}
}

// Disarm removes a site's policy; the site stays registered.
func Disarm(name string) {
	mu.RLock()
	s := sites[name]
	mu.RUnlock()
	if s != nil && s.pol.Swap(nil) != nil {
		armed.Add(-1)
	}
}

// DisarmAll removes every armed policy (test teardown).
func DisarmAll() {
	mu.RLock()
	defer mu.RUnlock()
	for _, s := range sites {
		if s.pol.Swap(nil) != nil {
			armed.Add(-1)
		}
	}
}

// Armed reports whether any site is currently armed.
func Armed() bool { return armed.Load() != 0 }

// Inject is the fault site hook for sites without a per-call argument.
// Disarmed — the overwhelmingly common case — it is a single atomic
// load.
func Inject(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	return injectSlow(name, "")
}

// InjectArg is Inject for sites that pass a per-call argument (device
// name, kernel function name, module name) for Policy.Arg matching.
func InjectArg(name, arg string) error {
	if armed.Load() == 0 {
		return nil
	}
	return injectSlow(name, arg)
}

func injectSlow(name, arg string) error {
	mu.RLock()
	s := sites[name]
	mu.RUnlock()
	if s == nil {
		return nil
	}
	ap := s.pol.Load()
	if ap == nil {
		return nil
	}
	if ap.p.Arg != "" && ap.p.Arg != arg {
		return nil
	}
	if ap.p.EveryNth > 1 && ap.n.Add(1)%ap.p.EveryNth != 0 {
		return nil
	}
	if ap.p.Prob > 0 && ap.p.Prob < 1 && rand.Float64() >= ap.p.Prob {
		return nil
	}
	if ap.p.OneShot && ap.fired.Swap(true) {
		return nil
	}
	switch {
	case ap.p.Do != nil:
		return ap.p.Do(arg)
	case ap.p.Delay > 0:
		time.Sleep(ap.p.Delay)
		return nil
	case ap.p.Panic:
		panic(PanicValue{Site: name, Msg: ap.p.Msg})
	default:
		return ap.err
	}
}

// ArmSpec arms sites from a spec string:
//
//	spec    := entry { ";" entry }
//	entry   := site [ "[" arg "]" ] "=" [ triggers "->" ] action
//	triggers:= trigger { "," trigger }
//	trigger := "oneshot" | "every(N)" | "prob(P)"
//	action  := "error" | "error(msg)" | "delay(duration)"
//	         | "panic" | "panic(msg)"
//
// e.g. "blockdev.write_sector=every(50)->error;kernel.entry[kmalloc]=oneshot->panic".
// It is also applied to the LXFI_FAILPOINTS environment variable at
// package init, and backs the -failpoints flag of the perf commands.
func ArmSpec(spec string) error {
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, term, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("failpoint: spec entry %q has no '='", entry)
		}
		name = strings.TrimSpace(name)
		p := Policy{}
		if i := strings.IndexByte(name, '['); i >= 0 {
			if !strings.HasSuffix(name, "]") {
				return fmt.Errorf("failpoint: bad site arg in %q", entry)
			}
			p.Arg = name[i+1 : len(name)-1]
			name = name[:i]
		}
		if name == "" {
			return fmt.Errorf("failpoint: empty site name in %q", entry)
		}
		action := strings.TrimSpace(term)
		if trig, act, ok := strings.Cut(term, "->"); ok {
			action = strings.TrimSpace(act)
			for _, tr := range strings.Split(trig, ",") {
				if err := parseTrigger(&p, strings.TrimSpace(tr)); err != nil {
					return fmt.Errorf("failpoint: entry %q: %w", entry, err)
				}
			}
		}
		if err := parseAction(&p, action); err != nil {
			return fmt.Errorf("failpoint: entry %q: %w", entry, err)
		}
		Arm(name, p)
	}
	return nil
}

// call splits "kind(payload)" forms; ok is false for a bare word.
func call(s, kind string) (payload string, ok bool) {
	if strings.HasPrefix(s, kind+"(") && strings.HasSuffix(s, ")") {
		return s[len(kind)+1 : len(s)-1], true
	}
	return "", false
}

func parseTrigger(p *Policy, tr string) error {
	switch {
	case tr == "oneshot":
		p.OneShot = true
	case strings.HasPrefix(tr, "every"):
		n, ok := call(tr, "every")
		if !ok {
			return fmt.Errorf("bad trigger %q", tr)
		}
		v, err := strconv.ParseInt(n, 10, 64)
		if err != nil || v < 1 {
			return fmt.Errorf("bad every(N) in %q", tr)
		}
		p.EveryNth = v
	case strings.HasPrefix(tr, "prob"):
		n, ok := call(tr, "prob")
		if !ok {
			return fmt.Errorf("bad trigger %q", tr)
		}
		v, err := strconv.ParseFloat(n, 64)
		if err != nil || v <= 0 || v > 1 {
			return fmt.Errorf("bad prob(P) in %q", tr)
		}
		p.Prob = v
	default:
		return fmt.Errorf("unknown trigger %q", tr)
	}
	return nil
}

func parseAction(p *Policy, act string) error {
	switch {
	case act == "error":
	case act == "panic":
		p.Panic = true
	case strings.HasPrefix(act, "error"):
		msg, ok := call(act, "error")
		if !ok {
			return fmt.Errorf("unknown action %q", act)
		}
		p.Msg = msg
	case strings.HasPrefix(act, "panic"):
		msg, ok := call(act, "panic")
		if !ok {
			return fmt.Errorf("unknown action %q", act)
		}
		p.Panic, p.Msg = true, msg
	case strings.HasPrefix(act, "delay"):
		dur, ok := call(act, "delay")
		if !ok {
			return fmt.Errorf("unknown action %q", act)
		}
		d, err := time.ParseDuration(dur)
		if err != nil || d <= 0 {
			return fmt.Errorf("bad delay(duration) in %q", act)
		}
		p.Delay = d
	default:
		return fmt.Errorf("unknown action %q", act)
	}
	return nil
}

func init() {
	if spec := os.Getenv("LXFI_FAILPOINTS"); spec != "" {
		if err := ArmSpec(spec); err != nil {
			panic(err) // a malformed chaos spec should fail fast, not silently run clean
		}
	}
}

package kernel

// I/O port support, implementing Guideline 3 of §6: "If the module is
// required to pass a certain fixed value into a kernel API (e.g. ... an
// integer I/O port number to inb and outb I/O functions), grant a REF
// capability for that fixed value with a special type, and annotate the
// function in question to require a REF capability of that special type
// for its argument."
//
// Port numbers are not memory, so WRITE capabilities cannot express
// ownership of them; the REF type "io port" does.

import (
	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/mem"
)

// IOPortRefType is the special REF type for I/O port ownership.
const IOPortRefType = "io port"

// IOPortInit registers the simulated port space and the inb/outb
// exports. Call once after New when port I/O is needed.
func (k *Kernel) IOPortInit() {
	if k.ports != nil {
		return
	}
	k.ports = make(map[uint64]uint8)
	sys := k.Sys

	sys.RegisterKernelFunc("inb",
		[]core.Param{core.P("port", "u16")},
		"pre(check(ref(io port), port))",
		func(t *core.Thread, args []uint64) uint64 {
			k.mu.Lock()
			defer k.mu.Unlock()
			return uint64(k.ports[args[0]&0xffff])
		})

	sys.RegisterKernelFunc("outb",
		[]core.Param{core.P("port", "u16"), core.P("val", "u8")},
		"pre(check(ref(io port), port))",
		func(t *core.Thread, args []uint64) uint64 {
			k.mu.Lock()
			k.ports[args[0]&0xffff] = uint8(args[1])
			k.mu.Unlock()
			return 0
		})
}

// GrantIOPortRange gives a module's shared principal REF capabilities
// for a device's port window; the bus/firmware layer calls this when a
// device is assigned to a driver (the analogue of request_region).
func (k *Kernel) GrantIOPortRange(m *core.Module, base, n uint16) {
	for p := uint64(base); p < uint64(base)+uint64(n); p++ {
		k.Sys.Caps.Grant(m.Set.Shared(), caps.RefCap(IOPortRefType, mem.Addr(p)))
	}
}

// Port reads the simulated port space directly (trusted-side test
// helper).
func (k *Kernel) Port(port uint16) uint8 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.ports[uint64(port)]
}

// SetPort writes the simulated port space directly (trusted side).
func (k *Kernel) SetPort(port uint16, v uint8) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.ports == nil {
		k.ports = make(map[uint64]uint8)
	}
	k.ports[uint64(port)] = v
}

package kernel

// Kernel timers: the other direction of the callback contracts of §2.2
// ("the kernel invokes the poll function pointer at a later time, and
// expects that this points to a legitimate function"). mod_timer's
// annotation requires that the module hold a CALL capability for the
// function it registers, so a compromised module cannot park an
// arbitrary address in the timer wheel and have the kernel jump to it
// on expiry.

import (
	"sort"

	"lxfi/internal/core"
	"lxfi/internal/mem"
)

// TimerFnType is the fptr type timers dispatch through.
const TimerFnType = "timer.fn"

type timer struct {
	id      uint64
	expires uint64
	fn      mem.Addr
	arg     uint64
}

// TimerInit registers the timer exports; call once after New when
// timers are needed.
func (k *Kernel) TimerInit() {
	if k.timerOn {
		return
	}
	k.timerOn = true
	sys := k.Sys

	sys.RegisterFPtrType(TimerFnType,
		[]core.Param{core.P("arg", "u64")}, "")
	k.gTimerFn = sys.BindIndirect(TimerFnType)

	// mod_timer(expires, fn, arg): (re)arm a timer. The module must be
	// able to call fn itself.
	sys.RegisterKernelFunc("mod_timer",
		[]core.Param{core.P("expires", "u64"), core.P("fn", "timer_fn_t"), core.P("arg", "u64")},
		"pre(check(call, fn))",
		func(t *core.Thread, args []uint64) uint64 {
			k.mu.Lock()
			defer k.mu.Unlock()
			k.nextTimerID++
			k.timers = append(k.timers, timer{
				id:      k.nextTimerID,
				expires: args[0],
				fn:      mem.Addr(args[1]),
				arg:     args[2],
			})
			return k.nextTimerID
		})

	sys.RegisterKernelFunc("del_timer",
		[]core.Param{core.P("id", "u64")},
		"",
		func(t *core.Thread, args []uint64) uint64 {
			k.mu.Lock()
			defer k.mu.Unlock()
			for i, tm := range k.timers {
				if tm.id == args[0] {
					k.timers = append(k.timers[:i], k.timers[i+1:]...)
					return 1
				}
			}
			return 0
		})
}

// AdvanceTime moves the simulated clock forward and fires every expired
// timer in expiry order. Callbacks run through the checked
// module-indirect-call path, so a timer armed before a module was
// compromised still cannot be redirected afterwards (the function
// address was pinned at mod_timer time).
func (k *Kernel) AdvanceTime(t *core.Thread, now uint64) (fired int) {
	k.mu.Lock()
	k.now = now
	var due []timer
	rest := k.timers[:0]
	for _, tm := range k.timers {
		if tm.expires <= now {
			due = append(due, tm)
		} else {
			rest = append(rest, tm)
		}
	}
	k.timers = rest
	k.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].expires < due[j].expires })
	for _, tm := range due {
		// Dispatch from kernel context through the slot-less checked
		// call (the value was validated when armed; the dispatch still
		// verifies the target exists and runs it under its module's
		// principal via the wrapper).
		if _, err := k.gTimerFn.CallAddr1(t, tm.fn, tm.arg); err != nil {
			k.Printk("timer %d: dispatch failed: %v", tm.id, err)
			continue
		}
		fired++
	}
	return fired
}

// PendingTimers returns the number of armed timers.
func (k *Kernel) PendingTimers() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.timers)
}

// Now returns the simulated clock.
func (k *Kernel) Now() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.now
}

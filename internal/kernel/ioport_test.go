package kernel_test

import (
	"testing"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
)

// ioRig loads a module that drives a device behind an I/O port window.
func ioRig(t *testing.T, mode core.Mode) (*kernel.Kernel, *core.Thread, *core.Module) {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	k.IOPortInit()
	th := k.Sys.NewThread("io")
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "uart",
		Imports:  []string{"inb", "outb"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name: "write_reg", Params: []core.Param{core.P("port", "u16"), core.P("val", "u8")},
				Impl: func(th *core.Thread, args []uint64) uint64 {
					if _, err := th.CallKernel("outb", args[0], args[1]); err != nil {
						return 1
					}
					return 0
				},
			},
			{
				Name: "read_reg", Params: []core.Param{core.P("port", "u16")},
				Impl: func(th *core.Thread, args []uint64) uint64 {
					v, err := th.CallKernel("inb", args[0])
					if err != nil {
						return ^uint64(0)
					}
					return v
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return k, th, m
}

func TestIOPortOwnWindow(t *testing.T) {
	// Guideline 3: the driver owns ports 0x3F8-0x3FF and may use them.
	k, th, m := ioRig(t, core.Enforce)
	k.GrantIOPortRange(m, 0x3F8, 8)
	if ret, err := th.CallModule(m, "write_reg", 0x3F8, 0x55); err != nil || ret != 0 {
		t.Fatalf("write_reg: ret=%d err=%v", ret, err)
	}
	if k.Port(0x3F8) != 0x55 {
		t.Fatalf("port = %#x", k.Port(0x3F8))
	}
	v, err := th.CallModule(m, "read_reg", 0x3F8)
	if err != nil || v != 0x55 {
		t.Fatalf("read_reg = %#x, %v", v, err)
	}
}

func TestIOPortOutsideWindowBlocked(t *testing.T) {
	// The same module may not poke another device's ports (say, the
	// PIC at 0x20) — the fixed-value REF capability is missing.
	k, th, m := ioRig(t, core.Enforce)
	k.GrantIOPortRange(m, 0x3F8, 8)
	k.SetPort(0x20, 0x11)
	ret, _ := th.CallModule(m, "write_reg", 0x20, 0xFF)
	if ret != 1 {
		t.Fatal("module wrote a port outside its window")
	}
	if k.Port(0x20) != 0x11 {
		t.Fatal("foreign port was modified")
	}
	// Stock kernel: anything goes.
	k2, th2, m2 := ioRig(t, core.Off)
	if ret, err := th2.CallModule(m2, "write_reg", 0x20, 0xFF); err != nil || ret != 0 {
		t.Fatalf("stock port write failed: %d %v", ret, err)
	}
	if k2.Port(0x20) != 0xFF {
		t.Fatal("stock kernel should allow it")
	}
}

func TestIOPortInitIdempotent(t *testing.T) {
	k := kernel.New()
	k.IOPortInit()
	k.IOPortInit() // must not panic on duplicate registration
	k.SetPort(1, 2)
	if k.Port(1) != 2 {
		t.Fatal("port space broken")
	}
}

// Package kernel implements the simulated core kernel that modules are
// isolated from: tasks and credentials, the pid hash table, uaccess
// (copy_{to,from}_user with the KERNEL_DS pitfall of CVE-2010-4258),
// spinlocks, the SysV shm objects used by the CAN BCM exploit, and the
// memory-allocator exports with their LXFI annotations.
//
// Everything here is "core kernel" in LXFI's threat model: fully
// trusted, running with a nil principal.
package kernel

import (
	"fmt"
	"sync"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/layout"
	"lxfi/internal/mem"
)

// Errno values (returned as negative numbers in the usual kernel style).
const (
	EPERM   = 1
	ENOENT  = 2
	EIO     = 5
	ENOMEM  = 12
	EFAULT  = 14
	EBUSY   = 16
	EEXIST  = 17
	EXDEV   = 18
	ENOTDIR = 20
	EISDIR  = 21
	EINVAL  = 22
	EFBIG   = 27
	ENOSPC  = 28
	ENOSYS  = 38
	// ENETDOWN is what the socket layer surfaces while a protocol or
	// driver module is quarantined (graceful degradation of crossings
	// that would otherwise fail with a raw gate error).
	ENETDOWN = 100
)

// Err encodes -errno as a uint64 return value.
func Err(errno int64) uint64 { return uint64(-errno) }

// IsErr reports whether a return value encodes an error.
func IsErr(v uint64) bool { return int64(v) < 0 }

// PidHashBuckets is the size of the simulated pid hash table.
const PidHashBuckets = 16

// Kernel is the simulated core kernel.
//
// mu guards the small mutable kernel tables (pid counter, timer wheel,
// port space, printk log, daemon list); it is a leaf lock, never held
// across a call into module code.
type Kernel struct {
	Sys *core.System

	mu      sync.Mutex
	pidHash mem.Addr // array of PidHashBuckets u64 chain heads
	nextPid uint64

	taskLayout *layout.Struct
	shmLayout  *layout.Struct

	// ports is the simulated I/O port space (see ioport.go).
	ports map[uint64]uint8

	// Bound indirect-call gates (shm ctl, timer callbacks), resolved
	// by ShmInit/TimerInit.
	gShmCtl  *core.IndGate
	gTimerFn *core.IndGate

	// timer state (see timer.go).
	timerOn     bool
	timers      []timer
	nextTimerID uint64
	now         uint64

	logs []string

	// daemons are background kernel threads (goroutine-backed), e.g. the
	// VFS writeback flusher. Shutdown stops and joins them.
	daemons []*daemon
}

// daemon is one background kernel thread.
type daemon struct {
	name string
	stop chan struct{}
	h    *core.ThreadHandle
}

// SpawnDaemon starts a background kernel thread (a kthread): run
// executes on its own goroutine-backed Thread and should return when the
// stop channel closes. Subsystems register daemons at boot — the VFS
// writeback flusher is spawned this way from vfs.Init.
func (k *Kernel) SpawnDaemon(name string, run func(t *core.Thread, stop <-chan struct{})) {
	d := &daemon{name: name, stop: make(chan struct{})}
	d.h = k.Sys.Spawn(name, func(t *core.Thread) { run(t, d.stop) })
	k.mu.Lock()
	k.daemons = append(k.daemons, d)
	k.mu.Unlock()
}

// Shutdown stops every background daemon and waits for it to exit. Safe
// to call more than once.
func (k *Kernel) Shutdown() {
	k.mu.Lock()
	ds := k.daemons
	k.daemons = nil
	k.mu.Unlock()
	for _, d := range ds {
		close(d.stop)
		d.h.Join()
	}
}

// Layout names registered by this package.
const (
	TaskStruct = "struct task_struct"
	ShmKernel  = "struct shmid_kernel"
)

// New boots a simulated kernel on a fresh core.System.
func New() *Kernel {
	sys := core.NewSystem()
	k := &Kernel{Sys: sys, nextPid: 1}

	k.taskLayout = sys.Layouts.Define(TaskStruct,
		layout.F("pid", 8),
		layout.F("uid", 8),
		layout.F("euid", 8),
		layout.F("clear_child_tid", 8),
		layout.F("next", 8), // pid hash chain
		layout.F("comm", 16),
	)
	// shmid_kernel is deliberately in the 16-byte size class so that it
	// can sit adjacent to the CAN BCM module's undersized buffer, as in
	// Oberheide's exploit (§8.1).
	k.shmLayout = sys.Layouts.Define(ShmKernel,
		layout.F("ops", 8), // pointer to shm operations table
		layout.F("perm", 8),
	)
	sys.Layouts.Define("spinlock_t", layout.F("val", 8))

	k.pidHash = sys.Statics.Alloc(8*PidHashBuckets, 8)

	sys.RegisterConst("EPERM", EPERM)
	sys.RegisterConst("ENOENT", ENOENT)
	sys.RegisterConst("EIO", EIO)
	sys.RegisterConst("ENOMEM", ENOMEM)
	sys.RegisterConst("EFAULT", EFAULT)
	sys.RegisterConst("EBUSY", EBUSY)
	sys.RegisterConst("EEXIST", EEXIST)
	sys.RegisterConst("EXDEV", EXDEV)
	sys.RegisterConst("ENOTDIR", ENOTDIR)
	sys.RegisterConst("EISDIR", EISDIR)
	sys.RegisterConst("EINVAL", EINVAL)
	sys.RegisterConst("EFBIG", EFBIG)
	sys.RegisterConst("ENOSPC", ENOSPC)
	sys.RegisterConst("ENOSYS", ENOSYS)

	k.registerExports()
	return k
}

// Enforce switches LXFI on.
func (k *Kernel) Enforce() { k.Sys.Mon.SetMode(core.Enforce) }

// Stock switches LXFI off (baseline kernel).
func (k *Kernel) Stock() { k.Sys.Mon.SetMode(core.Off) }

// Log returns a snapshot of the printk log.
func (k *Kernel) Log() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]string(nil), k.logs...)
}

// Printk appends to the kernel log (trusted-side helper).
func (k *Kernel) Printk(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	k.mu.Lock()
	k.logs = append(k.logs, msg)
	k.mu.Unlock()
}

// --- exported kernel API (the functions modules import) ---

func (k *Kernel) registerExports() {
	sys := k.Sys

	// alloc_caps resolves an allocation's base address to a WRITE
	// capability for its *actual* allocated size (the slab class size).
	// A pointer that is not a live allocation (freed, forged, interior)
	// still emits a one-byte probe: the caller cannot own it, so kfree
	// double-frees and wild frees fail the transfer's ownership check.
	sys.RegisterIterator("alloc_caps", func(t *core.Thread, args []int64, emit func(caps.Cap) error) error {
		addr := mem.Addr(uint64(args[0]))
		if addr == 0 {
			return nil
		}
		size, ok := sys.Slab.ObjectSize(addr)
		if !ok {
			return emit(caps.WriteCap(addr, 1))
		}
		return emit(caps.WriteCap(addr, size))
	})

	// Memory allocator. The post annotation transfers a WRITE capability
	// for the memory actually allocated — which is what defeats the CAN
	// BCM integer overflow (§8.1): "LXFI will grant the module a WRITE
	// capability for only the number of bytes corresponding to the
	// actual allocation size, rather than what the module asked for."
	sys.RegisterKernelFunc("kmalloc",
		[]core.Param{core.P("size", "size_t")},
		"post(if (return != 0) transfer(alloc_caps(return)))",
		func(t *core.Thread, args []uint64) uint64 {
			a, err := sys.Slab.Alloc(args[0])
			if err != nil {
				return 0
			}
			return uint64(a)
		})

	// kfree uses a transfer with a capability iterator so that *no*
	// principal retains write access to freed memory.
	sys.RegisterKernelFunc("kfree",
		[]core.Param{core.P("ptr", "void *")},
		"pre(transfer(alloc_caps(ptr)))",
		func(t *core.Thread, args []uint64) uint64 {
			if args[0] == 0 {
				return 0
			}
			_ = sys.Slab.Free(mem.Addr(args[0]))
			return 0
		})

	// spin_lock_init writes zero through its argument — the §1 example of
	// a "harmless" routine that needs a check annotation.
	for _, fn := range []struct {
		name string
		v    uint64
	}{{"spin_lock_init", 0}, {"spin_lock", 1}, {"spin_unlock", 0}} {
		v := fn.v
		sys.RegisterKernelFunc(fn.name,
			[]core.Param{core.P("lock", "spinlock_t *")},
			"pre(check(write, lock, 8))",
			func(t *core.Thread, args []uint64) uint64 {
				if err := sys.AS.WriteU64(mem.Addr(args[0]), v); err != nil {
					return Err(EFAULT)
				}
				return 0
			})
	}

	sys.RegisterKernelFunc("printk",
		[]core.Param{core.P("msg", "const char *")},
		"",
		func(t *core.Thread, args []uint64) uint64 {
			s, err := sys.AS.ReadCString(mem.Addr(args[0]), 256)
			if err != nil {
				return Err(EFAULT)
			}
			k.mu.Lock()
			k.logs = append(k.logs, s)
			k.mu.Unlock()
			return 0
		})

	// copy_from_user(to, from, n): the *callee* (kernel) writes n bytes
	// at to on the module's behalf, so the module must prove WRITE
	// ownership of the destination. The RDS vulnerability is exactly a
	// module passing an unchecked user-controlled `to` here.
	sys.RegisterKernelFunc("copy_from_user",
		[]core.Param{core.P("to", "void *"), core.P("from", "const void *"), core.P("n", "size_t")},
		"pre(check(write, to, n))",
		func(t *core.Thread, args []uint64) uint64 {
			to, from, n := mem.Addr(args[0]), mem.Addr(args[1]), args[2]
			if !k.accessOK(t, from, n) {
				return Err(EFAULT)
			}
			buf := make([]byte, n)
			if err := sys.AS.Read(from, buf); err != nil {
				return Err(EFAULT)
			}
			if err := sys.AS.Write(to, buf); err != nil {
				return Err(EFAULT)
			}
			return 0
		})

	// uaccess_dst models the contract of the no-access_ok uaccess
	// variants (__copy_to_user / __copy_from_user): a user-space
	// destination needs no capability (the hardware protects the kernel),
	// but a kernel-space destination must be memory the module owns.
	sys.RegisterIterator("uaccess_dst", func(t *core.Thread, args []int64, emit func(caps.Cap) error) error {
		to := mem.Addr(uint64(args[0]))
		n := uint64(args[1])
		if mem.IsUser(to) && mem.IsUser(to+mem.Addr(n)) {
			return nil
		}
		return emit(caps.WriteCap(to, n))
	})

	// __copy_to_user: the double-underscore variant skips access_ok — its
	// callers are supposed to have checked already. rds_page_copy_user
	// famously had not (CVE-2010-3904). The LXFI annotation restores the
	// contract: kernel-space destinations require WRITE ownership.
	rawCopy := func(t *core.Thread, args []uint64) uint64 {
		to, from, n := mem.Addr(args[0]), mem.Addr(args[1]), args[2]
		buf := make([]byte, n)
		if err := sys.AS.Read(from, buf); err != nil {
			return Err(EFAULT)
		}
		if err := sys.AS.Write(to, buf); err != nil {
			return Err(EFAULT)
		}
		return 0
	}
	sys.RegisterKernelFunc("__copy_to_user",
		[]core.Param{core.P("to", "void *"), core.P("from", "const void *"), core.P("n", "size_t")},
		"pre(check(uaccess_dst(to, n)))",
		rawCopy)
	sys.RegisterKernelFunc("__copy_from_user",
		[]core.Param{core.P("to", "void *"), core.P("from", "const void *"), core.P("n", "size_t")},
		"pre(check(uaccess_dst(to, n)))",
		rawCopy)

	sys.RegisterKernelFunc("copy_to_user",
		[]core.Param{core.P("to", "void *"), core.P("from", "const void *"), core.P("n", "size_t")},
		"",
		func(t *core.Thread, args []uint64) uint64 {
			to, from, n := mem.Addr(args[0]), mem.Addr(args[1]), args[2]
			if !k.accessOK(t, to, n) {
				return Err(EFAULT)
			}
			buf := make([]byte, n)
			if err := sys.AS.Read(from, buf); err != nil {
				return Err(EFAULT)
			}
			if err := sys.AS.Write(to, buf); err != nil {
				return Err(EFAULT)
			}
			return 0
		})

	// capable(CAP_NET_ADMIN)-style check: true iff current euid is root.
	sys.RegisterKernelFunc("capable",
		[]core.Param{core.P("cap", "int")},
		"",
		func(t *core.Thread, args []uint64) uint64 {
			if t.Task == 0 {
				return 0
			}
			euid, _ := sys.AS.ReadU64(t.Task + mem.Addr(k.taskLayout.Off("euid")))
			if euid == 0 {
				return 1
			}
			return 0
		})

	// commit_creds/prepare_kernel_cred: the classic privilege-escalation
	// payload pair. Exported (the attacker payloads reference them), but
	// deliberately unannotated: no module has any business calling them,
	// so LXFI's safe default keeps them unreachable from module context.
	sys.RegisterUnannotatedKernelFunc("prepare_kernel_cred",
		[]core.Param{core.P("daemon", "struct task_struct *")},
		func(t *core.Thread, args []uint64) uint64 { return 0 })
	sys.RegisterUnannotatedKernelFunc("commit_creds",
		[]core.Param{core.P("cred", "struct cred *")},
		func(t *core.Thread, args []uint64) uint64 {
			if t.Task != 0 {
				k.SetTaskUID(t.Task, 0)
			}
			return 0
		})

	// detach_pid unlinks a task from the pid hash — the rootkit
	// primitive of §8.1 ("Other exploits"). Unannotated: modules may not
	// call it.
	sys.RegisterUnannotatedKernelFunc("detach_pid",
		[]core.Param{core.P("task", "struct task_struct *")},
		func(t *core.Thread, args []uint64) uint64 {
			k.DetachPid(mem.Addr(args[0]))
			return 0
		})
}

// accessOK models access_ok(): user pointers are always fine; kernel
// pointers only pass when the thread runs with KERNEL_DS — the exact
// hole CVE-2010-4258 exploits.
func (k *Kernel) accessOK(t *core.Thread, addr mem.Addr, n uint64) bool {
	if t.KernelDS {
		return true
	}
	return mem.IsUser(addr) && mem.IsUser(addr+mem.Addr(n))
}

// AccessOK exposes accessOK to module code implementing uaccess-style
// checks of their own.
func (k *Kernel) AccessOK(t *core.Thread, addr mem.Addr, n uint64) bool {
	return k.accessOK(t, addr, n)
}

// --- tasks ---

// TaskField returns the address of a named task_struct field.
func (k *Kernel) TaskField(task mem.Addr, field string) mem.Addr {
	return task + mem.Addr(k.taskLayout.Off(field))
}

// CreateTask allocates a task_struct with the given uid, inserts it into
// the pid hash, and returns its address.
func (k *Kernel) CreateTask(comm string, uid uint64) mem.Addr {
	task := k.Sys.Statics.Alloc(k.taskLayout.Size, 8)
	k.mu.Lock()
	defer k.mu.Unlock()
	pid := k.nextPid
	k.nextPid++
	as := k.Sys.AS
	must(as.WriteU64(k.TaskField(task, "pid"), pid))
	must(as.WriteU64(k.TaskField(task, "uid"), uid))
	must(as.WriteU64(k.TaskField(task, "euid"), uid))
	if len(comm) > 15 {
		comm = comm[:15]
	}
	must(as.WriteCString(k.TaskField(task, "comm"), comm))
	// Insert at the head of the hash chain.
	bucket := k.pidHash + mem.Addr(8*(pid%PidHashBuckets))
	head, _ := as.ReadU64(bucket)
	must(as.WriteU64(k.TaskField(task, "next"), head))
	must(as.WriteU64(bucket, uint64(task)))
	return task
}

// TaskPID returns a task's pid.
func (k *Kernel) TaskPID(task mem.Addr) uint64 {
	v, _ := k.Sys.AS.ReadU64(k.TaskField(task, "pid"))
	return v
}

// TaskUID returns a task's uid.
func (k *Kernel) TaskUID(task mem.Addr) uint64 {
	v, _ := k.Sys.AS.ReadU64(k.TaskField(task, "uid"))
	return v
}

// SetTaskUID sets uid and euid (commit_creds).
func (k *Kernel) SetTaskUID(task mem.Addr, uid uint64) {
	must(k.Sys.AS.WriteU64(k.TaskField(task, "uid"), uid))
	must(k.Sys.AS.WriteU64(k.TaskField(task, "euid"), uid))
}

// SetCurrent makes task the thread's current task.
func (k *Kernel) SetCurrent(t *core.Thread, task mem.Addr) { t.Task = task }

// SetClearChildTid sets the task's clear_child_tid pointer (normally a
// benign user-space address set via set_tid_address(2); attackers set it
// to a kernel address).
func (k *Kernel) SetClearChildTid(task, addr mem.Addr) {
	must(k.Sys.AS.WriteU64(k.TaskField(task, "clear_child_tid"), uint64(addr)))
}

// LookupPid walks the pid hash chain; returns 0 if the pid is unlinked
// (this is what `ps` sees).
func (k *Kernel) LookupPid(pid uint64) mem.Addr {
	bucket := k.pidHash + mem.Addr(8*(pid%PidHashBuckets))
	cur, _ := k.Sys.AS.ReadU64(bucket)
	for cur != 0 {
		if k.TaskPID(mem.Addr(cur)) == pid {
			return mem.Addr(cur)
		}
		cur, _ = k.Sys.AS.ReadU64(k.TaskField(mem.Addr(cur), "next"))
	}
	return 0
}

// DetachPid unlinks a task from the pid hash (the rootkit primitive).
func (k *Kernel) DetachPid(task mem.Addr) {
	pid := k.TaskPID(task)
	bucket := k.pidHash + mem.Addr(8*(pid%PidHashBuckets))
	as := k.Sys.AS
	cur, _ := as.ReadU64(bucket)
	if mem.Addr(cur) == task {
		next, _ := as.ReadU64(k.TaskField(task, "next"))
		must(as.WriteU64(bucket, next))
		return
	}
	prev := mem.Addr(cur)
	for prev != 0 {
		next, _ := as.ReadU64(k.TaskField(prev, "next"))
		if mem.Addr(next) == task {
			nn, _ := as.ReadU64(k.TaskField(task, "next"))
			must(as.WriteU64(k.TaskField(prev, "next"), nn))
			return
		}
		prev = mem.Addr(next)
	}
}

// DoExit models the buggy do_exit of CVE-2010-4258: when a task dies,
// the kernel writes a zero through clear_child_tid *without resetting
// the addr_limit context*, so with KERNEL_DS in effect the check of the
// user-provided pointer is omitted and the zero lands at an arbitrary
// kernel address.
func (k *Kernel) DoExit(t *core.Thread) {
	if t.Task == 0 {
		return
	}
	tid, _ := k.Sys.AS.ReadU64(k.TaskField(t.Task, "clear_child_tid"))
	if tid == 0 {
		return
	}
	// put_user(0, (int __user *)tid) — a 32-bit zero store.
	if k.accessOK(t, mem.Addr(tid), 4) {
		_ = k.Sys.AS.WriteU32(mem.Addr(tid), 0)
	}
}

// Oops models the kernel's NULL-dereference handler: it logs and kills
// the current task via DoExit — with addr_limit still set, per the CVE.
func (k *Kernel) Oops(t *core.Thread, what string) {
	k.Printk("BUG: unable to handle kernel NULL pointer dereference (%s)", what)
	k.DoExit(t)
}

// --- SysV shm (the CAN BCM exploit's victim object) ---

// ShmOpsSlot is the registered fptr type for shm_operations.ctl.
const ShmOpsSlot = "shm_operations.ctl"

// ShmInit registers the shm fptr type and default operations table; call
// once after New when the shm subsystem is needed.
func (k *Kernel) ShmInit() {
	k.Sys.RegisterFPtrType(ShmOpsSlot,
		[]core.Param{core.P("shm", "struct shmid_kernel *"), core.P("cmd", "int")},
		"")
	k.gShmCtl = k.Sys.BindIndirect(ShmOpsSlot)
	k.Sys.RegisterKernelFunc("shm_default_ctl",
		[]core.Param{core.P("shm", "struct shmid_kernel *"), core.P("cmd", "int")},
		"",
		func(t *core.Thread, args []uint64) uint64 { return 0 })
}

// NewShmSegment allocates a shmid_kernel from the slab (size class 16)
// with its ops pointing at a static table whose ctl slot holds
// shm_default_ctl.
func (k *Kernel) NewShmSegment() (shm mem.Addr, err error) {
	shm, aerr := k.Sys.Slab.Alloc(k.shmLayout.Size)
	if aerr != nil {
		return 0, aerr
	}
	ctl, ok := k.Sys.FuncByName("shm_default_ctl")
	if !ok {
		return 0, fmt.Errorf("kernel: ShmInit not called")
	}
	table := k.Sys.Statics.Alloc(8, 8)
	must(k.Sys.AS.WriteU64(table, uint64(ctl.Addr)))
	must(k.Sys.AS.WriteU64(shm+mem.Addr(k.shmLayout.Off("ops")), uint64(table)))
	return shm, nil
}

// ShmCtl is the kernel path the exploit triggers (shmctl(2)): it loads
// the ops table pointer from the shmid_kernel and indirect-calls the ctl
// slot.
func (k *Kernel) ShmCtl(t *core.Thread, shm mem.Addr, cmd uint64) (uint64, error) {
	table, err := k.Sys.AS.ReadU64(shm + mem.Addr(k.shmLayout.Off("ops")))
	if err != nil {
		return 0, err
	}
	return k.gShmCtl.Call2(t, mem.Addr(table), uint64(shm), cmd)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

package kernel

import (
	"strings"
	"testing"

	"lxfi/internal/mem"
)

func TestTaskLifecycle(t *testing.T) {
	k := New()
	task := k.CreateTask("sshd", 1000)
	if k.TaskPID(task) != 1 {
		t.Fatalf("pid = %d", k.TaskPID(task))
	}
	if k.TaskUID(task) != 1000 {
		t.Fatalf("uid = %d", k.TaskUID(task))
	}
	if k.LookupPid(1) != task {
		t.Fatal("pid hash lookup failed")
	}
	k.SetTaskUID(task, 0)
	if k.TaskUID(task) != 0 {
		t.Fatal("setuid failed")
	}
}

func TestPidHashChainsAndDetach(t *testing.T) {
	k := New()
	var tasks []mem.Addr
	// Force chain collisions: pids 1..33 share buckets mod 16.
	for i := 0; i < 33; i++ {
		tasks = append(tasks, k.CreateTask("p", 1000))
	}
	for i, task := range tasks {
		if k.LookupPid(uint64(i+1)) != task {
			t.Fatalf("pid %d not found", i+1)
		}
	}
	// Detach one in the middle of a chain (pid 17 collides with 1, 33).
	k.DetachPid(tasks[16])
	if k.LookupPid(17) != 0 {
		t.Fatal("detached pid still visible")
	}
	if k.LookupPid(1) != tasks[0] || k.LookupPid(33) != tasks[32] {
		t.Fatal("detach corrupted the chain")
	}
	// Detach a chain head.
	k.DetachPid(tasks[32])
	if k.LookupPid(33) != 0 || k.LookupPid(1) != tasks[0] {
		t.Fatal("head detach broken")
	}
	// Detach of an unlinked task is harmless.
	k.DetachPid(tasks[32])
}

func TestAccessOK(t *testing.T) {
	k := New()
	th := k.Sys.NewThread("t")
	if !k.AccessOK(th, mem.UserHeap, 8) {
		t.Fatal("user pointer rejected")
	}
	if k.AccessOK(th, mem.KernelHeap, 8) {
		t.Fatal("kernel pointer accepted without KERNEL_DS")
	}
	th.KernelDS = true
	if !k.AccessOK(th, mem.KernelHeap, 8) {
		t.Fatal("KERNEL_DS should disable the check")
	}
}

func TestCopyToFromUser(t *testing.T) {
	k := New()
	th := k.Sys.NewThread("t")
	user := k.Sys.User.Alloc(64, 8)
	kern := k.Sys.Statics.Alloc(64, 8)
	must(k.Sys.AS.WriteCString(user, "hello"))

	// Kernel context: copy_from_user into kernel buffer.
	ret, err := th.CallKernel("copy_from_user", uint64(kern), uint64(user), 6)
	if err != nil || IsErr(ret) {
		t.Fatalf("copy_from_user: ret=%d err=%v", int64(ret), err)
	}
	s, _ := k.Sys.AS.ReadCString(kern, 16)
	if s != "hello" {
		t.Fatalf("copied %q", s)
	}

	// copy_to_user rejects kernel destinations.
	ret, err = th.CallKernel("copy_to_user", uint64(kern), uint64(user), 6)
	if err != nil || !IsErr(ret) {
		t.Fatalf("copy_to_user to kernel address should EFAULT: ret=%d err=%v", int64(ret), err)
	}
	ret, err = th.CallKernel("copy_to_user", uint64(user+32), uint64(kern), 6)
	if err != nil || IsErr(ret) {
		t.Fatalf("copy_to_user: ret=%d err=%v", int64(ret), err)
	}
}

func TestDoExitKernelDSWritesZero(t *testing.T) {
	// The CVE-2010-4258 primitive: with KERNEL_DS left set, do_exit
	// writes a 32-bit zero through an attacker-controlled pointer.
	k := New()
	th := k.Sys.NewThread("t")
	task := k.CreateTask("victim", 1000)
	k.SetCurrent(th, task)

	target := k.Sys.Statics.Alloc(8, 8)
	must(k.Sys.AS.WriteU64(target, 0xffffffffa1b2c3d4))
	k.SetClearChildTid(task, target+4) // zero the high half

	// Without KERNEL_DS the kernel-address write is suppressed.
	k.DoExit(th)
	v, _ := k.Sys.AS.ReadU64(target)
	if v != 0xffffffffa1b2c3d4 {
		t.Fatal("write happened without KERNEL_DS")
	}

	th.KernelDS = true
	k.Oops(th, "test")
	v, _ = k.Sys.AS.ReadU64(target)
	if v != 0x00000000a1b2c3d4 {
		t.Fatalf("high half not zeroed: %#x", v)
	}
	if len(k.Log()) == 0 || !strings.Contains(k.Log()[0], "NULL pointer dereference") {
		t.Fatal("oops not logged")
	}
}

func TestCapableAndCommitCreds(t *testing.T) {
	k := New()
	th := k.Sys.NewThread("t")
	task := k.CreateTask("user", 1000)
	k.SetCurrent(th, task)
	ret, err := th.CallKernel("capable", 12)
	if err != nil || ret != 0 {
		t.Fatalf("capable for uid 1000 = %d, %v", ret, err)
	}
	if _, err := th.CallKernel("commit_creds", 0); err != nil {
		t.Fatal(err)
	}
	ret, _ = th.CallKernel("capable", 12)
	if ret != 1 {
		t.Fatal("capable after commit_creds should be true")
	}
}

func TestPrintk(t *testing.T) {
	k := New()
	th := k.Sys.NewThread("t")
	msg := k.Sys.Statics.Alloc(32, 8)
	must(k.Sys.AS.WriteCString(msg, "module loaded"))
	if _, err := th.CallKernel("printk", uint64(msg)); err != nil {
		t.Fatal(err)
	}
	if len(k.Log()) != 1 || k.Log()[0] != "module loaded" {
		t.Fatalf("log = %v", k.Log())
	}
}

func TestShmSegmentAndCtl(t *testing.T) {
	k := New()
	k.ShmInit()
	th := k.Sys.NewThread("t")
	shm, err := k.NewShmSegment()
	if err != nil {
		t.Fatal(err)
	}
	if sz, ok := k.Sys.Slab.ObjectSize(shm); !ok || sz != 16 {
		t.Fatalf("shmid_kernel size class = %d (want 16, for slab adjacency)", sz)
	}
	ret, err := k.ShmCtl(th, shm, 0)
	if err != nil || ret != 0 {
		t.Fatalf("shmctl: ret=%d err=%v", ret, err)
	}
}

func TestErrHelpers(t *testing.T) {
	if !IsErr(Err(EINVAL)) {
		t.Fatal("Err/IsErr broken")
	}
	if IsErr(0) || IsErr(42) {
		t.Fatal("false positive")
	}
	if int64(Err(EFAULT)) != -EFAULT {
		t.Fatal("Err encoding")
	}
}

func TestModeSwitches(t *testing.T) {
	k := New()
	if k.Sys.Mon.Enforcing() {
		t.Fatal("should boot stock")
	}
	k.Enforce()
	if !k.Sys.Mon.Enforcing() {
		t.Fatal("Enforce failed")
	}
	k.Stock()
	if k.Sys.Mon.Enforcing() {
		t.Fatal("Stock failed")
	}
}

func TestKfreeOfNULLIsNoop(t *testing.T) {
	k := New()
	th := k.Sys.NewThread("t")
	if ret, err := th.CallKernel("kfree", 0); err != nil || ret != 0 {
		t.Fatalf("kfree(NULL): %d, %v", ret, err)
	}
}

func TestSpinlockOps(t *testing.T) {
	k := New()
	th := k.Sys.NewThread("t")
	lock := k.Sys.Statics.Alloc(8, 8)
	for _, step := range []struct {
		fn   string
		want uint64
	}{{"spin_lock_init", 0}, {"spin_lock", 1}, {"spin_unlock", 0}} {
		if _, err := th.CallKernel(step.fn, uint64(lock)); err != nil {
			t.Fatal(err)
		}
		if v, _ := k.Sys.AS.ReadU64(lock); v != step.want {
			t.Fatalf("%s: lock = %d want %d", step.fn, v, step.want)
		}
	}
}

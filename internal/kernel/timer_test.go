package kernel_test

import (
	"testing"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
)

func timerRig(t *testing.T, mode core.Mode) (*kernel.Kernel, *core.Thread, *core.Module, *int) {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	k.TimerInit()
	th := k.Sys.NewThread("timer")
	fired := 0
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "watchdog",
		Imports:  []string{"mod_timer", "del_timer"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name: "tick", Type: kernel.TimerFnType,
				Impl: func(th *core.Thread, args []uint64) uint64 {
					fired += int(args[0])
					return 0
				},
			},
			{
				Name: "arm", Params: []core.Param{core.P("expires", "u64"), core.P("fn", "u64")},
				Impl: func(th *core.Thread, args []uint64) uint64 {
					id, err := th.CallKernel("mod_timer", args[0], args[1], 1)
					if err != nil {
						return 0
					}
					return id
				},
			},
			{
				Name: "disarm", Params: []core.Param{core.P("id", "u64")},
				Impl: func(th *core.Thread, args []uint64) uint64 {
					ret, err := th.CallKernel("del_timer", args[0])
					if err != nil {
						return ^uint64(0)
					}
					return ret
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return k, th, m, &fired
}

func TestTimerArmFireCancel(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		k, th, m, fired := timerRig(t, mode)
		tick := m.Funcs["tick"].Addr
		id1, err := th.CallModule(m, "arm", 100, uint64(tick))
		if err != nil || id1 == 0 {
			t.Fatalf("[%v] arm: %d %v", mode, id1, err)
		}
		id2, _ := th.CallModule(m, "arm", 200, uint64(tick))
		if k.PendingTimers() != 2 {
			t.Fatalf("[%v] pending = %d", mode, k.PendingTimers())
		}
		// Cancel the second, advance past both deadlines.
		if ret, err := th.CallModule(m, "disarm", id2); err != nil || ret != 1 {
			t.Fatalf("[%v] disarm: %d %v", mode, ret, err)
		}
		if n := k.AdvanceTime(th, 500); n != 1 {
			t.Fatalf("[%v] fired %d timers, want 1", mode, n)
		}
		if *fired != 1 {
			t.Fatalf("[%v] callback ran %d times", mode, *fired)
		}
		if k.PendingTimers() != 0 {
			t.Fatalf("[%v] timers left over", mode)
		}
	}
}

func TestTimerRejectsForeignCallback(t *testing.T) {
	// §2.2: the module may only register callbacks it could call itself.
	k, th, m, fired := timerRig(t, core.Enforce)
	// detach_pid is a kernel function the module has no CALL cap for.
	detach, _ := k.Sys.FuncByName("detach_pid")
	ret, _ := th.CallModule(m, "arm", 10, uint64(detach.Addr))
	if ret != 0 {
		t.Fatal("module armed a timer pointing at an unauthorized function")
	}
	if k.PendingTimers() != 0 {
		t.Fatal("timer registered despite failed check")
	}
	k.AdvanceTime(th, 100)
	if *fired != 0 {
		t.Fatal("callback fired")
	}
}

func TestTimerCallbackRunsUnderModulePrincipal(t *testing.T) {
	// The expiry dispatch goes through the module wrapper: a violation
	// in the callback kills the module like any other entry point.
	k := kernel.New()
	k.Enforce()
	k.TimerInit()
	th := k.Sys.NewThread("t")
	victim := k.Sys.Statics.Alloc(8, 8)
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "eviltimer",
		Imports:  []string{"mod_timer"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name: "tick", Type: kernel.TimerFnType,
				Impl: func(th *core.Thread, args []uint64) uint64 {
					_ = th.WriteU64(victim, 0) // isolated even on the timer path
					return 0
				},
			},
			{
				Name: "arm",
				Impl: func(th *core.Thread, args []uint64) uint64 {
					mod := th.CurrentModule()
					_, _ = th.CallKernel("mod_timer", 1, uint64(mod.Funcs["tick"].Addr), 0)
					return 0
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Sys.AS.WriteU64(victim, 7); err != nil {
		t.Fatal(err)
	}
	_, _ = th.CallModule(m, "arm")
	k.AdvanceTime(th, 10)
	if v, _ := k.Sys.AS.ReadU64(victim); v != 7 {
		t.Fatal("timer callback escaped isolation")
	}
	if !m.Dead() {
		t.Fatal("module not killed for the violation")
	}
}

// Multi-principal: the paper's §3.1 econet example. Every socket the
// econet module serves is its own principal; a compromise in the
// context of one socket cannot write a sibling socket's state, while
// the module's own cross-instance code (the global socket list) still
// works by switching to the global principal.
//
// Run with: go run ./examples/multi-principal
package main

import (
	"fmt"

	"lxfi"
	"lxfi/internal/modules/econet"
)

func main() {
	machine, err := lxfi.Boot(lxfi.Enforce)
	if err != nil {
		panic(err)
	}
	k, th := machine.Kernel, machine.Thread

	// Importing the econet package registered its descriptor; the
	// loader resolves the netstack dependency and boots it by name.
	inst, err := machine.Loader().Load(th, "econet")
	if err != nil {
		panic(err)
	}
	proto := inst.(*econet.Proto)

	// Two users, two sockets — two principals.
	alice, _ := machine.Net.Socket(th, econet.Family)
	bob, _ := machine.Net.Socket(th, econet.Family)
	fmt.Printf("alice's socket: %#x\nbob's socket:   %#x\n", uint64(alice), uint64(bob))
	fmt.Printf("module tracks %d sockets on its global list\n\n", proto.SocketCount())

	user := k.Sys.User.Alloc(64, 8)
	_, _ = machine.Net.Sendmsg(th, alice, user, 32, 0)
	_, _ = machine.Net.Sendmsg(th, alice, user, 32, 0)
	_, _ = machine.Net.Sendmsg(th, bob, user, 32, 0)
	fmt.Printf("tx counts: alice=%d bob=%d\n\n", proto.TxCount(alice), proto.TxCount(bob))

	// Show the isolation directly: bob's principal holds no WRITE
	// capability for alice's per-socket state.
	aliceSk := proto.Sk(alice)
	pAlice, _ := proto.M.Set.Lookup(alice)
	pBob, _ := proto.M.Set.Lookup(bob)
	probe := lxfi.WriteCap(aliceSk, 8)
	fmt.Printf("can %v write alice's state? %v\n", pAlice, k.Sys.Caps.Check(pAlice, probe))
	fmt.Printf("can %v write alice's state? %v\n", pBob, k.Sys.Caps.Check(pBob, probe))
	fmt.Printf("can %v write alice's state? %v (cross-instance code only)\n\n",
		proto.M.Set.Global(), k.Sys.Caps.Check(proto.M.Set.Global(), probe))

	// Cross-instance operation: closing a socket unlinks it from the
	// module-wide list — the code path that needs the global principal.
	_, _ = machine.Net.Release(th, alice)
	fmt.Printf("after closing alice's socket, the list holds %d sockets\n", proto.SocketCount())
	if v := k.Sys.Mon.LastViolation(); v != nil {
		fmt.Println("unexpected violation:", v)
	} else {
		fmt.Println("no violations: legitimate cross-instance code ran under the global principal")
	}
}

// Device-driver: run the isolated e1000 network driver end to end —
// PCI probe (with principal aliasing), transmit through the qdisc and
// the checked ndo_start_xmit indirect call, and NAPI receive — then
// print the per-packet guard profile LXFI executed, hot-reload the
// driver, and keep transmitting through the pre-reload device handle.
//
// Run with: go run ./examples/device-driver
package main

import (
	"fmt"

	"lxfi"
	"lxfi/internal/modules/e1000sim"
)

func main() {
	machine, err := lxfi.Boot(lxfi.Enforce)
	if err != nil {
		panic(err)
	}
	k, th := machine.Kernel, machine.Thread

	machine.Bus.AddDevice(e1000sim.VendorIntel, e1000sim.Dev82540EM)
	ld := machine.Loader()
	inst, err := ld.Load(th, "e1000")
	if err != nil {
		panic(err)
	}
	drv := inst.(*e1000sim.Driver)
	fmt.Printf("e1000 probed: pci_dev=%#x net_device=%#x (aliased principals)\n",
		uint64(drv.PciDev), uint64(drv.Dev))

	// Wire the NIC back to itself: transmitted frames come right back.
	drv.Nic.OnTx = func(frame []byte) { drv.Nic.InjectRx(frame) }

	const packets = 100
	before := k.Sys.Mon.Stats.Snapshot()
	for i := 0; i < packets; i++ {
		skb, err := machine.Net.AllocSkb(64)
		if err != nil {
			panic(err)
		}
		if err := k.Sys.AS.WriteU64(machine.Net.SkbField(skb, "len"), 64); err != nil {
			panic(err)
		}
		if _, err := machine.Net.XmitSkb(th, drv.Dev, skb); err != nil {
			panic(err)
		}
	}
	// Drain the loopbacked frames through NAPI.
	for drv.Nic.RxPending() > 0 {
		if _, err := machine.Net.Poll(th, drv.Dev, 16); err != nil {
			panic(err)
		}
	}
	delta := k.Sys.Mon.Stats.Snapshot().Sub(before)

	fmt.Printf("transmitted %d frames (%d bytes), received %d back\n",
		drv.Nic.TxFrames, drv.Nic.TxBytes, machine.Net.RxDelivered)
	fmt.Println("\nguards executed per packet (cf. Figure 13):")
	per := func(v uint64) float64 { return float64(v) / packets }
	fmt.Printf("  annotation actions: %5.1f\n", per(delta.AnnotationActions))
	fmt.Printf("  function entries:   %5.1f\n", per(delta.FuncEntries))
	fmt.Printf("  function exits:     %5.1f\n", per(delta.FuncExits))
	fmt.Printf("  mem-write checks:   %5.1f\n", per(delta.MemWriteChecks))
	fmt.Printf("  kernel ind-calls:   %5.1f (slow path: %.1f)\n",
		per(delta.IndCallAll), per(delta.IndCallSlow))
	if v := k.Sys.Mon.LastViolation(); v != nil {
		fmt.Println("unexpected violation:", v)
	} else {
		fmt.Println("\nno violations — the driver stayed within its contract")
	}

	// Hot reload: quiesce the driver's gates, snapshot and migrate its
	// capabilities into a freshly probed generation, then transmit
	// through the *old* net_device handle — the kernel's stale
	// function-pointer slots redirect into the successor.
	stats, err := ld.Reload(th, "e1000")
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nhot reload: %d caps migrated, quiesce %dus, total %dus\n",
		stats.Migrated, stats.QuiesceNs/1000, stats.TotalNs/1000)
	fresh, _ := ld.Instance("e1000")
	drv2 := fresh.(*e1000sim.Driver)
	for i := 0; i < 10; i++ {
		skb, err := machine.Net.AllocSkb(64)
		if err != nil {
			panic(err)
		}
		if _, err := machine.Net.XmitSkb(th, drv.Dev, skb); err != nil {
			panic(err)
		}
	}
	fmt.Printf("post-reload: %d frames through the pre-reload handle landed on the successor\n",
		drv2.Nic.TxFrames)
	if v := k.Sys.Mon.LastViolation(); v != nil {
		fmt.Println("unexpected violation:", v)
	}
}

// Filesystem: mount an isolated tmpfs-style module, do real file I/O
// through the VFS substrate, then watch a stray cross-principal write
// from a compromised mount bounce off LXFI.
//
// Two mounts of the same module run as two instance principals. Mount B
// holds a "secret" file whose page sits in the kernel's page cache —
// ownership of that page was transferred back to the kernel when the
// module finished filling it. Mount A's compromised ioctl then aims an
// arbitrary write at that page: on the stock kernel the file is silently
// corrupted; under lxfi.Enforce the write is a violation and only the
// offending module dies.
//
// Run with: go run ./examples/filesystem
package main

import (
	"fmt"

	"lxfi"
	"lxfi/internal/modules/tmpfssim"
)

func main() {
	for _, mode := range []lxfi.Mode{lxfi.Off, lxfi.Enforce} {
		fmt.Printf("=== %s kernel ===\n", mode)
		run(mode)
		fmt.Println()
	}
}

func run(mode lxfi.Mode) {
	machine, err := lxfi.Boot(mode)
	if err != nil {
		panic(err)
	}
	k, th, v := machine.Kernel, machine.Thread, machine.FS

	if _, err := machine.Loader().Load(th, "tmpfssim"); err != nil {
		panic(err)
	}
	sbA, err := v.Mount(th, tmpfssim.FsID, 0)
	if err != nil {
		panic(err)
	}
	sbB, err := v.Mount(th, tmpfssim.FsID, 0)
	if err != nil {
		panic(err)
	}

	// Normal file I/O on mount B: create, write, read back, stat.
	secret := []byte("the treasure is buried at 48.8584 N")
	ino, err := v.Create(th, sbB, "/secret")
	if err != nil {
		panic(err)
	}
	if _, err := v.Write(th, sbB, "/secret", 0, secret); err != nil {
		panic(err)
	}
	got, err := v.Read(th, sbB, "/secret", 0, uint64(len(secret)))
	if err != nil {
		panic(err)
	}
	size, _, _ := v.Stat(th, sbB, "/secret")
	fmt.Printf("  mount B: wrote and read back %q (size %d)\n", got, size)

	// The attack: mount A's compromised ioctl pokes B's cached page.
	page, _ := v.PageAddr(ino, 0)
	_, pokeErr := v.Ioctl(th, sbA, tmpfssim.CmdPoke, uint64(page))

	after, _ := v.Read(th, sbB, "/secret", 0, uint64(len(secret)))
	if string(after) != string(secret) {
		fmt.Printf("  mount A scribbled on B's page cache: %q\n", after)
		fmt.Println("  -> DATA CORRUPTION across principals")
		return
	}
	fmt.Printf("  mount A's stray write failed: %v\n", pokeErr)
	fmt.Println("  -> blocked:", k.Sys.Mon.LastViolation())
}

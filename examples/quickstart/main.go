// Quickstart: boot the simulated kernel, load a module under LXFI, and
// watch the §1 motivating attack fail.
//
// The attack: spin_lock_init writes a zero through its pointer
// argument. A module that may legitimately call it passes the address
// of the current task's uid field, which would make the process root —
// unless the annotation "pre(check(write, lock, 8))" demands that the
// module actually own that memory.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"lxfi"
)

func main() {
	for _, mode := range []lxfi.Mode{lxfi.Off, lxfi.Enforce} {
		fmt.Printf("=== %s kernel ===\n", mode)
		run(mode)
		fmt.Println()
	}
}

func run(mode lxfi.Mode) {
	machine, err := lxfi.Boot(mode)
	if err != nil {
		panic(err)
	}
	k := machine.Kernel
	th := machine.Thread

	// An unprivileged task is running.
	task := k.CreateTask("victim-shell", 1000)
	k.SetCurrent(th, task)

	// Load a module that uses spin_lock_init — legitimately on its own
	// lock, or maliciously on whatever address it is handed.
	mod, err := k.Sys.LoadModule(lxfi.ModuleSpec{
		Name:     "lockuser",
		Imports:  []string{"spin_lock_init", "kmalloc", "printk"},
		DataSize: 4096,
		Funcs: []lxfi.FuncSpec{{
			Name:   "init_lock",
			Params: []lxfi.Param{lxfi.P("lock", "spinlock_t *")},
			Impl: func(t *lxfi.Thread, args []uint64) uint64 {
				if _, err := t.CallKernel("spin_lock_init", args[0]); err != nil {
					return 1
				}
				return 0
			},
		}},
	})
	if err != nil {
		panic(err)
	}

	// Legitimate use: a lock inside the module's own data section.
	ret, err := th.CallModule(mod, "init_lock", uint64(mod.Data))
	fmt.Printf("  legitimate spin_lock_init on own lock: ret=%d err=%v\n", ret, err)

	// The attack: "initialize" the uid field of the current task.
	uidAddr := k.TaskField(task, "uid")
	ret, _ = th.CallModule(mod, "init_lock", uint64(uidAddr))
	fmt.Printf("  attack on &task->uid: ret=%d, uid is now %d\n", ret, k.TaskUID(task))
	if k.TaskUID(task) == 0 {
		fmt.Println("  -> PRIVILEGE ESCALATION: the shell is root")
	} else {
		fmt.Println("  -> blocked:", k.Sys.Mon.LastViolation())
	}
}

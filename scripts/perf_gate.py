#!/usr/bin/env python3
"""Generic perf gate for the BENCH_*.json CI artifacts.

Walks every benchmark report (fsperf, crossings, netperf, and whatever
lands next), collects all numeric leaves whose key ends in `_ns` plus
every `allocs_per_op` leaf, and compares the previous run's values
against the fresh ones. The gate fails (exit 1) when any phase
regressed by more than THRESHOLD percent ns/op, or when allocations
regressed: a phase that was allocation-free (0 allocs/op) must stay at
0 — any increase fails — and a phase that allocated may grow at most
THRESHOLD percent. Phases or files present in only one run are listed
but never fail the gate, so adding or removing a benchmark does not
wedge CI; a completely missing baseline (first run, expired retention)
skips the relative gate for that file.

`trace_overhead_pct` leaves (the flight recorder's cost over the
untraced enforced crossing) are gated absolutely instead: the current
value must stay under TRACE_THRESHOLD percent, baseline or not, so the
very first traced run is already held to the budget.

Hot-reload latency is gated absolutely the same way: every ns leaf of a
`reload` phase (the crossings "reload" row, the fsperf per-filesystem
and netperf top-level reload objects' `*_total_ns`) must stay under
RELOAD_MAX_NS — a module swap that stalls crossings for longer than
that ceiling fails even on a first run with no baseline.

The netperf streaming phase is gated twice: its `*_crossings_per_byte`
leaves ride the generic relative gate (the batched data path growing
its boundary-crossing rate per byte by more than THRESHOLD percent
fails), and its `cpu_ratio` leaf — enforced CPU cost over stock for the
same windowed transfer — is held absolutely under
STREAM_MAX_CPU_RATIO, baseline or not, so the very first streaming run
is already held to the line-rate budget.

The fsperf `journal` phase is gated twice: its ns leaves ride the
generic relative gate (a journaled rename more than THRESHOLD percent
slower than the baseline fails), and its `writes_per_op` leaf — the
sector writes one write-ahead rename performs — is held absolutely
under JOURNAL_MAX_WRITES_PER_OP, so the crash-consistency protocol
cannot silently grow its write amplification.

Usage:
    perf_gate.py PREV.json CURRENT.json       # one report
    perf_gate.py PREV_DIR  CURRENT_DIR        # every BENCH_*.json in CURRENT_DIR
    perf_gate.py --summary PREV CUR           # benchstat-style delta table
                                              # over every numeric field,
                                              # informational only (exit 0)
"""

import glob
import json
import os
import sys

THRESHOLD = 30.0  # percent
TRACE_THRESHOLD = 10.0  # absolute ceiling for trace_overhead_pct leaves
RELOAD_MAX_NS = 5e7  # absolute ceiling (50 ms) for reload-phase latency
# Absolute ceiling on journal write amplification: sector writes per
# journaled rename (intent + commit + applies + checkpoint).
JOURNAL_MAX_WRITES_PER_OP = 8.0
# Absolute ceiling on the streaming workload's enforced/stock CPU
# ratio: batching must keep isolation within 1.5x of stock.
STREAM_MAX_CPU_RATIO = 1.5
# A phase whose baseline is allocation-free must stay below this many
# allocs/op (MemStats sampling noise allowance, well under one real
# allocation per op).
ALLOC_ZERO_EPS = 0.01

# Keys that label an element of a JSON array of objects, in preference
# order, so paths read "tmpfs/create/stock_ns" instead of
# "results/0/rows/3/stock_ns".
LABEL_KEYS = ("op", "fs", "phase", "test", "name")


def leaves(node, path=""):
    """Yield (path, key, value) for every numeric leaf in the report."""
    if isinstance(node, dict):
        for key, val in node.items():
            if isinstance(val, (dict, list)):
                yield from leaves(val, f"{path}/{key}" if path else key)
            elif isinstance(val, (int, float)) and not isinstance(val, bool):
                yield (path, key, float(val))
    elif isinstance(node, list):
        for i, val in enumerate(node):
            label = str(i)
            if isinstance(val, dict):
                for lk in LABEL_KEYS:
                    if isinstance(val.get(lk), str):
                        label = val[lk]
                        break
            yield from leaves(val, f"{path}/{label}" if path else label)


def collect(doc, ns_only):
    out = {}
    bench = doc.get("bench", "?")
    for path, key, val in leaves(doc):
        if ns_only and not (key.endswith("_ns") or key == "allocs_per_op"
                            or key == "trace_overhead_pct"
                            or key == "writes_per_op"
                            or key.endswith("_crossings_per_byte")
                            or key == "cpu_ratio"):
            continue
        # Container keys like "results"/"rows" carry no information once
        # elements are labeled; drop them from the display path.
        parts = [p for p in path.split("/") if p not in ("results", "rows")]
        out[(bench, "/".join(parts), key)] = val
    return out


def load(path, ns_only):
    with open(path) as f:
        return collect(json.load(f), ns_only)


def pair_files(prev, cur):
    """Yield (name, prev_path_or_None, cur_path) report pairs."""
    if os.path.isdir(cur):
        for cpath in sorted(glob.glob(os.path.join(cur, "BENCH_*.json"))):
            name = os.path.basename(cpath)
            ppath = os.path.join(prev, name)
            yield name, (ppath if os.path.isfile(ppath) else None), cpath
    else:
        yield os.path.basename(cur), (prev if os.path.isfile(prev) else None), cur


def alloc_regressed(was, now):
    """The allocation-free guarantee is absolute: a phase whose baseline
    was 0 allocs/op fails on any measurable increase; a phase that
    already allocated may grow by at most THRESHOLD percent."""
    if was <= ALLOC_ZERO_EPS:
        return now > ALLOC_ZERO_EPS
    return 100.0 * (now - was) / was > THRESHOLD


def trace_failures(cur_vals, gate):
    """Absolute gate on trace_overhead_pct: no baseline required."""
    failures = []
    for key in sorted(cur_vals):
        bench, path, field = key
        if field != "trace_overhead_pct":
            continue
        now = cur_vals[key]
        over = gate and now > TRACE_THRESHOLD
        flag = "  <-- TRACE OVERHEAD OVER %.0f%% BUDGET" % TRACE_THRESHOLD if over else ""
        print("%-10s %-40s %-14s %12.2f%%%s" % (bench, path, field, now, flag))
        if over:
            failures.append(key)
    return failures


def reload_failures(cur_vals, gate):
    """Absolute gate on hot-reload latency: no baseline required. Every
    ns leaf of a reload phase must stay under RELOAD_MAX_NS."""
    failures = []
    for key in sorted(cur_vals):
        bench, path, field = key
        if path.split("/")[-1] != "reload":
            continue
        if not (field.endswith("_total_ns") or field in ("stock_ns", "lxfi_ns")):
            continue
        now = cur_vals[key]
        over = gate and now > RELOAD_MAX_NS
        flag = ("  <-- RELOAD LATENCY OVER %.0f ms CEILING" % (RELOAD_MAX_NS / 1e6)
                if over else "")
        print("%-10s %-40s %-14s %12.1f%s" % (bench, path, field, now, flag))
        if over:
            failures.append(key)
    return failures


def journal_failures(cur_vals, gate):
    """Absolute gate on journal write amplification: no baseline
    required. A journaled rename may not perform more than
    JOURNAL_MAX_WRITES_PER_OP sector writes."""
    failures = []
    for key in sorted(cur_vals):
        bench, path, field = key
        if field != "writes_per_op" or path.split("/")[-1] != "journal":
            continue
        now = cur_vals[key]
        over = gate and now > JOURNAL_MAX_WRITES_PER_OP
        flag = ("  <-- JOURNAL WRITE AMPLIFICATION OVER %.0f/op CEILING"
                % JOURNAL_MAX_WRITES_PER_OP if over else "")
        print("%-10s %-40s %-14s %12.1f%s" % (bench, path, field, now, flag))
        if over:
            failures.append(key)
    return failures


def streaming_failures(cur_vals, gate):
    """Absolute gate on the streaming workload's enforced/stock CPU
    ratio: no baseline required."""
    failures = []
    for key in sorted(cur_vals):
        bench, path, field = key
        if field != "cpu_ratio":
            continue
        now = cur_vals[key]
        over = gate and now > STREAM_MAX_CPU_RATIO
        flag = ("  <-- STREAMING CPU RATIO OVER %.1fx CEILING"
                % STREAM_MAX_CPU_RATIO if over else "")
        print("%-10s %-40s %-14s %12.3f%s" % (bench, path, field, now, flag))
        if over:
            failures.append(key)
    return failures


def compare(prev_vals, cur_vals, gate):
    failures = []
    for key in sorted(cur_vals):
        bench, path, field = key
        now = cur_vals[key]
        was = prev_vals.get(key)
        tag = "%-10s %-40s %-14s" % (bench, path, field)
        if field == "trace_overhead_pct":
            continue  # gated absolutely by trace_failures, not by delta
        if field == "writes_per_op":
            continue  # gated absolutely by journal_failures, not by delta
        if field == "cpu_ratio":
            continue  # gated absolutely by streaming_failures, not by delta
        if was is None:
            print("%s %38s" % (tag, "(new phase)"))
            continue
        if field == "allocs_per_op":
            regressed = gate and alloc_regressed(was, now)
            flag = "  <-- ALLOC REGRESSION" if regressed else ""
            print("%s %12.4f -> %12.4f%s" % (tag, was, now, flag))
            if regressed:
                failures.append(key)
            continue
        if was <= 0 or now <= 0:
            continue
        delta = 100.0 * (now - was) / was
        flag = "  <-- REGRESSION" if gate and delta > THRESHOLD else ""
        print("%s %12.1f -> %12.1f (%+6.1f%%)%s" % (tag, was, now, delta, flag))
        if gate and delta > THRESHOLD:
            failures.append(key)
    for key in sorted(set(prev_vals) - set(cur_vals)):
        print("%-10s %-40s %-14s %38s" % (key[0], key[1], key[2], "(phase removed)"))
    return failures


def main():
    args = sys.argv[1:]
    summary = "--summary" in args
    args = [a for a in args if a != "--summary"]
    if len(args) != 2:
        sys.exit(__doc__)
    prev, cur = args

    failures = []
    saw_any = False
    for name, ppath, cpath in pair_files(prev, cur):
        print(f"== {name} ==")
        cur_vals = load(cpath, ns_only=not summary)
        if ppath is None:
            print("   (no previous report; delta gate skipped for this file)")
            for key in sorted(cur_vals):
                if key[2] in ("trace_overhead_pct", "writes_per_op", "cpu_ratio"):
                    continue  # printed (and gated) by the absolute gates below
                print("%-10s %-40s %-14s %12.1f" % (key[0], key[1], key[2], cur_vals[key]))
            failures += trace_failures(cur_vals, gate=not summary)
            failures += reload_failures(cur_vals, gate=not summary)
            failures += journal_failures(cur_vals, gate=not summary)
            failures += streaming_failures(cur_vals, gate=not summary)
            print()
            continue
        saw_any = True
        failures += compare(load(ppath, ns_only=not summary), cur_vals, gate=not summary)
        failures += trace_failures(cur_vals, gate=not summary)
        failures += reload_failures(cur_vals, gate=not summary)
        failures += journal_failures(cur_vals, gate=not summary)
        failures += streaming_failures(cur_vals, gate=not summary)
        print()

    if summary:
        print("delta summary: informational only")
        return
    if failures:
        print("perf gate: %d phase(s) regressed (>%.0f%% ns/op, allocations "
              "above an allocation-free baseline, trace overhead past "
              "%.0f%%, reload latency past %.0f ms, journal write "
              "amplification past %.0f/op, or streaming CPU ratio past "
              "%.1fx)"
              % (len(failures), THRESHOLD, TRACE_THRESHOLD, RELOAD_MAX_NS / 1e6,
                 JOURNAL_MAX_WRITES_PER_OP, STREAM_MAX_CPU_RATIO),
              file=sys.stderr)
        sys.exit(1)
    if saw_any:
        print("perf gate: OK")
    else:
        print("perf gate: no baselines available; absolute gates only")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Perf gate for the fsperf CI artifact.

Compares the previous run's BENCH_fsperf.json against the fresh one and
fails (exit 1) when any phase regressed by more than THRESHOLD percent
ns/op, under either build (stock or lxfi). Phases present in only one
report are listed but never fail the gate, so adding or removing a
phase does not wedge CI.

Usage: perf_gate.py PREV.json CURRENT.json
"""

import json
import sys

THRESHOLD = 30.0  # percent


def rows(doc):
    out = {}
    for res in doc.get("results", []):
        for row in res.get("rows", []):
            out[(res["fs"], row["op"], "stock")] = row["stock_ns"]
            out[(res["fs"], row["op"], "lxfi")] = row["lxfi_ns"]
    conc = doc.get("concurrency")
    if conc:
        out[("concurrency", "multi-mount", "stock")] = conc["stock_ns"]
        out[("concurrency", "multi-mount", "lxfi")] = conc["lxfi_ns"]
    return out


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        prev = rows(json.load(f))
    with open(sys.argv[2]) as f:
        cur = rows(json.load(f))

    failures = []
    for key in sorted(cur):
        now = cur[key]
        was = prev.get(key)
        if was is None:
            print("%-12s %-16s %-6s %41s" % (key[0], key[1], key[2], "(new phase)"))
            continue
        if was <= 0 or now <= 0:
            continue
        delta = 100.0 * (now - was) / was
        flag = "  <-- REGRESSION" if delta > THRESHOLD else ""
        print("%-12s %-16s %-6s %10.0f -> %10.0f ns/op (%+6.1f%%)%s"
              % (key[0], key[1], key[2], was, now, delta, flag))
        if delta > THRESHOLD:
            failures.append(key)
    for key in sorted(set(prev) - set(cur)):
        print("%-12s %-16s %-6s %41s" % (key[0], key[1], key[2], "(phase removed)"))

    if failures:
        print("\nperf gate: %d phase(s) regressed more than %.0f%%"
              % (len(failures), THRESHOLD), file=sys.stderr)
        sys.exit(1)
    print("\nperf gate: OK")


if __name__ == "__main__":
    main()

// Benchmarks regenerating every table and figure of the paper's
// evaluation (§8). Each benchmark corresponds to one artifact:
//
//	BenchmarkFig8ExploitTable     — exploit prevention (Fig. 8)
//	BenchmarkFig9AnnotationTable  — annotation effort (Fig. 9)
//	BenchmarkFig10APIChurn        — kernel API churn series (Fig. 10)
//	BenchmarkFig11*               — SFI microbenchmarks (Fig. 11)
//	BenchmarkFig12*               — netperf paths (Fig. 12)
//	BenchmarkFig13Guards          — guard cost breakdown (Fig. 13)
//
// The human-readable tables are printed by the cmd/lxfi-* tools; the
// benchmarks here measure the same code paths and report the figure's
// key metrics via b.ReportMetric.
package lxfi_test

import (
	"testing"

	"lxfi/internal/annotdb"
	"lxfi/internal/apiscan"
	"lxfi/internal/core"
	"lxfi/internal/exploits"
	"lxfi/internal/fsperf"
	"lxfi/internal/microbench"
	"lxfi/internal/netperf"
)

// --- Figure 8 ---

func BenchmarkFig8ExploitTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stock := exploits.RunAll(core.Off)
		lxfiRes := exploits.RunAll(core.Enforce)
		for j := range stock {
			if !stock[j].Escalated || lxfiRes[j].Escalated {
				b.Fatalf("figure 8 outcome changed: %v / %v", stock[j], lxfiRes[j])
			}
		}
	}
}

// --- Figure 9 ---

func BenchmarkFig9AnnotationTable(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		sys, err := annotdb.BootAll(core.Enforce)
		if err != nil {
			b.Fatal(err)
		}
		t := annotdb.Build(sys)
		total = t.TotalFuncs + t.TotalFptrs
	}
	b.ReportMetric(float64(total), "annotations")
}

// --- Figure 10 ---

func BenchmarkFig10APIChurn(b *testing.B) {
	var exports int
	for i := 0; i < b.N; i++ {
		series := apiscan.Series(apiscan.Corpus())
		exports = series[len(series)-1].Exports
	}
	b.ReportMetric(float64(exports), "exports@2.6.39")
}

// --- Figure 11 ---

func benchWorkload(b *testing.B, build func(core.Mode) (*microbench.Workload, error), mode core.Mode) {
	w, err := build(mode)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Op(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11HotlistStock(b *testing.B) { benchWorkload(b, microbench.NewHotlist, core.Off) }
func BenchmarkFig11HotlistLXFI(b *testing.B)  { benchWorkload(b, microbench.NewHotlist, core.Enforce) }
func BenchmarkFig11LldStock(b *testing.B)     { benchWorkload(b, microbench.NewLld, core.Off) }
func BenchmarkFig11LldLXFI(b *testing.B)      { benchWorkload(b, microbench.NewLld, core.Enforce) }
func BenchmarkFig11MD5Stock(b *testing.B)     { benchWorkload(b, microbench.NewMD5, core.Off) }
func BenchmarkFig11MD5LXFI(b *testing.B)      { benchWorkload(b, microbench.NewMD5, core.Enforce) }

// --- Figure 12 ---

func benchTx(b *testing.B, mode core.Mode, payload uint64) {
	rig, err := netperf.NewRig(mode)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rig.TxPacket(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRx(b *testing.B, mode core.Mode, frame int) {
	rig, err := netperf.NewRig(mode)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	const burst = 32
	for done := 0; done < b.N; done += burst {
		if err := rig.RxBurst(frame, burst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12TCPStreamTxStock(b *testing.B) { benchTx(b, core.Off, netperf.TCPPayload) }
func BenchmarkFig12TCPStreamTxLXFI(b *testing.B)  { benchTx(b, core.Enforce, netperf.TCPPayload) }
func BenchmarkFig12UDPStreamTxStock(b *testing.B) { benchTx(b, core.Off, netperf.UDPPayload) }
func BenchmarkFig12UDPStreamTxLXFI(b *testing.B)  { benchTx(b, core.Enforce, netperf.UDPPayload) }
func BenchmarkFig12UDPStreamRxStock(b *testing.B) { benchRx(b, core.Off, netperf.UDPPayload) }
func BenchmarkFig12UDPStreamRxLXFI(b *testing.B)  { benchRx(b, core.Enforce, netperf.UDPPayload) }

// BenchmarkFig12Table derives the full Fig. 12 table once per run and
// reports the headline shape metrics.
func BenchmarkFig12Table(b *testing.B) {
	var udpRatio float64
	for i := 0; i < b.N; i++ {
		costs, err := netperf.MeasureCosts(500)
		if err != nil {
			b.Fatal(err)
		}
		rows := netperf.BuildTable(costs)
		for _, r := range rows {
			if r.Test == "UDP STREAM TX" {
				udpRatio = r.LxfiTput / r.StockTput
			}
		}
	}
	b.ReportMetric(udpRatio, "udp-tx-tput-ratio")
}

// --- Figure 13 ---

func BenchmarkFig13Guards(b *testing.B) {
	var totalNs float64
	for i := 0; i < b.N; i++ {
		rows, err := netperf.GuardBreakdown(300)
		if err != nil {
			b.Fatal(err)
		}
		totalNs = 0
		for _, r := range rows {
			totalNs += r.NsPerPkt
		}
	}
	b.ReportMetric(totalNs, "guard-ns/pkt")
}

// --- fsperf (the filesystem counterpart of Fig. 12, over internal/vfs) ---

// benchFsperf runs one full file lifetime per iteration — create, write,
// sync (writepage REF crossings), read, stat, unlink — over an isolated
// filesystem module.
func benchFsperf(b *testing.B, kind fsperf.Kind, mode core.Mode) {
	rig, err := fsperf.NewRig(mode, kind)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, fsperf.DefaultFileSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rig.OpCycle(i, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFsperfTmpfsOff(b *testing.B)     { benchFsperf(b, fsperf.Tmpfs, core.Off) }
func BenchmarkFsperfTmpfsEnforce(b *testing.B) { benchFsperf(b, fsperf.Tmpfs, core.Enforce) }
func BenchmarkFsperfMinixOff(b *testing.B)     { benchFsperf(b, fsperf.Minix, core.Off) }
func BenchmarkFsperfMinixEnforce(b *testing.B) { benchFsperf(b, fsperf.Minix, core.Enforce) }

// BenchmarkFsperfTable derives the full per-op table once per run and
// reports the headline metric: LXFI overhead on the cold-read path (the
// page-cache WRITE-transfer crossings).
func BenchmarkFsperfTable(b *testing.B) {
	var coldRatio float64
	for i := 0; i < b.N; i++ {
		costs, err := fsperf.MeasureCosts(fsperf.Minix, 32, fsperf.DefaultFileSize)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range fsperf.BuildTable(costs) {
			if r.Op == "read cold" && r.StockNs > 0 {
				coldRatio = r.LxfiNs / r.StockNs
			}
		}
	}
	b.ReportMetric(coldRatio, "cold-read-cost-ratio")
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationWriterSet quantifies §4.1's writer-set tracking: the
// same indirect-call-heavy transmit workload with the fast path enabled
// vs disabled (every kernel indirect call takes the full capability
// check).
func BenchmarkAblationWriterSetOn(b *testing.B) {
	rig, err := netperf.NewRig(core.Enforce)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rig.TxPacket(netperf.UDPPayload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWriterSetOff(b *testing.B) {
	rig, err := netperf.NewRig(core.Enforce)
	if err != nil {
		b.Fatal(err)
	}
	rig.K.Sys.Mon.DisableWriterSetOpt = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rig.TxPacket(netperf.UDPPayload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationXmit compares the standard WRITE-granting
// ndo_start_xmit interface against the Guideline-4 redesign
// (REF(sk_buff fields) + field accessors) on the same workload.
func BenchmarkAblationXmitStandard(b *testing.B) { benchTx(b, core.Enforce, netperf.UDPPayload) }

func BenchmarkAblationXmitStrict(b *testing.B) {
	rig, err := netperf.NewStrictRig(core.Enforce)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rig.TxPacket(netperf.UDPPayload); err != nil {
			b.Fatal(err)
		}
	}
}

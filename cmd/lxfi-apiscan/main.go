// Command lxfi-apiscan regenerates Figure 10: the kernel API churn
// series for versions 2.6.20–2.6.39, by scanning the synthetic header
// corpus the way the paper scans Linux trees with ctags.
package main

import (
	"fmt"

	"lxfi/internal/apiscan"
)

func main() {
	fmt.Println("Figure 10 — rate of change of Linux kernel module APIs")
	fmt.Println("(synthetic corpus calibrated to the paper's endpoints; see DESIGN.md)")
	fmt.Println()
	fmt.Print(apiscan.Format(apiscan.Series(apiscan.Corpus())))
}

// Command lxfi-coredump takes, validates, and diffs live dumps of the
// LXFI kernel.
//
//	lxfi-coredump -boot [-o dump.json]   boot the full Fig. 9 system,
//	                                     run an allocator workload on a
//	                                     traced thread, and dump it
//	                                     mid-flight
//	lxfi-coredump -validate dump.json    re-check the dump's invariants
//	                                     layer by layer
//	lxfi-coredump -diff a.json b.json    report the capability delta
//	                                     between two dumps
package main

import (
	"flag"
	"fmt"
	"os"

	"lxfi/internal/annotdb"
	"lxfi/internal/core"
	"lxfi/internal/coredump"
	"lxfi/internal/modules/tmpfssim"
)

func main() {
	boot := flag.Bool("boot", false, "boot the Fig. 9 system, run a workload, dump it")
	validate := flag.Bool("validate", false, "validate the dump file argument")
	diff := flag.Bool("diff", false, "diff the two dump file arguments (before, after)")
	out := flag.String("o", "", "write the -boot dump here instead of stdout")
	flag.Parse()

	var err error
	switch {
	case *boot:
		err = runBoot(*out)
	case *validate:
		if flag.NArg() != 1 {
			err = fmt.Errorf("-validate takes one dump file")
		} else {
			err = runValidate(flag.Arg(0))
		}
	case *diff:
		if flag.NArg() != 2 {
			err = fmt.Errorf("-diff takes two dump files (before, after)")
		} else {
			err = runDiff(flag.Arg(0), flag.Arg(1))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lxfi-coredump:", err)
		os.Exit(1)
	}
}

// runBoot brings up the full ten-module system with a filesystem
// mounted on top, drives kmalloc/kfree crossings from a scratch module
// on a traced thread, and snapshots the result while an allocation is
// still held — so the dump carries live WRITE capabilities, dirty
// pages, and a populated flight-recorder tail.
func runBoot(out string) error {
	ld, err := annotdb.BootAllLoader(core.Enforce)
	if err != nil {
		return err
	}
	k := ld.BC.K
	defer k.Shutdown()
	k.Sys.EnableTracing()
	th := k.Sys.NewThread("work")
	// The loader brings up the VFS substrate on demand for tmpfssim.
	if _, err := ld.Load(th, "tmpfssim"); err != nil {
		return err
	}
	v := ld.BC.FS
	sb, err := v.Mount(th, tmpfssim.FsID, 0)
	if err != nil {
		return err
	}
	if _, err := v.Create(th, sb, "/core"); err != nil {
		return err
	}
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := v.Write(th, sb, "/core", 0, payload); err != nil {
		return err
	}

	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "scratch",
		Imports:  []string{"kmalloc", "kfree"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name: "churn", Params: []core.Param{core.P("n", "int")},
				Impl: func(th *core.Thread, args []uint64) uint64 {
					for i := uint64(0); i < args[0]; i++ {
						p, err := th.CallKernel("kmalloc", 64)
						if err != nil || p == 0 {
							return 1
						}
						if _, err := th.CallKernel("kfree", p); err != nil {
							return 1
						}
					}
					return 0
				},
			},
			{
				Name: "hold", Params: []core.Param{core.P("size", "size_t")},
				Impl: func(th *core.Thread, args []uint64) uint64 {
					p, err := th.CallKernel("kmalloc", args[0])
					if err != nil {
						return 0
					}
					return p
				},
			},
		},
	})
	if err != nil {
		return err
	}
	if ret, err := th.CallModule(m, "churn", 64); err != nil || ret != 0 {
		return fmt.Errorf("workload churn failed: ret=%d err=%v", ret, err)
	}
	if p, err := th.CallModule(m, "hold", 128); err != nil || p == 0 {
		return fmt.Errorf("workload hold failed: p=%#x err=%v", p, err)
	}

	d := coredump.Snapshot(k.Sys, coredump.Options{
		Reason:  "lxfi-coredump -boot",
		Threads: []*core.Thread{th},
		VFS:     v,
	})
	enc, err := d.Encode()
	if err != nil {
		return err
	}
	if out == "" {
		_, err = os.Stdout.Write(append(enc, '\n'))
		return err
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d modules, %d threads, epoch %d\n",
		out, len(d.Modules), len(d.Threads), d.Epoch)
	return nil
}

func load(path string) (*coredump.Dump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return coredump.Decode(data)
}

func runValidate(path string) error {
	d, err := load(path)
	if err != nil {
		return err
	}
	issues := coredump.Validate(d)
	if len(issues) == 0 {
		fmt.Printf("%s: ok (%d modules, %d threads, all %d layers clean)\n",
			path, len(d.Modules), len(d.Threads), len(coredump.Layers))
		return nil
	}
	fmt.Print(coredump.FormatIssues(issues))
	return fmt.Errorf("%d invariant(s) violated", len(issues))
}

func runDiff(before, after string) error {
	a, err := load(before)
	if err != nil {
		return err
	}
	b, err := load(after)
	if err != nil {
		return err
	}
	diff := coredump.Compare(a, b)
	fmt.Print(diff.Format())
	if diff.Empty() {
		fmt.Println("no capability changes")
	}
	return nil
}

// Command lxfi-netperf regenerates Figure 12 (netperf throughput and
// CPU utilization over the isolated e1000 driver) and, with -guards,
// Figure 13 (the per-packet guard cost breakdown for UDP STREAM TX).
//
// With -json it emits BENCH_netperf.json: the measured per-packet path
// costs plus the concurrent socket-pair phase (one worker thread per
// econet socket pair) and the hot-reload-under-TX-traffic phase, for
// the CI perf gate.
package main

import (
	"flag"
	"fmt"

	"lxfi/internal/benchio"
	"lxfi/internal/failpoint"
	"lxfi/internal/netperf"
)

func main() {
	packets := flag.Int("packets", 2000, "packets per measurement")
	segments := flag.Int("segments", 800, "segments per streaming transfer")
	guards := flag.Bool("guards", false, "also print the Figure 13 guard breakdown")
	pairs := flag.Int("pairs", 4, "socket pairs (worker threads) in the concurrent phase")
	failpoints := flag.String("failpoints", "",
		"arm failpoints for the run, LXFI_FAILPOINTS syntax (e.g. \"netstack.xmit=prob(0.01)->error\")")
	bf := benchio.Bind(
		"emit BENCH_netperf.json (path costs + concurrent socket phase + reload phase)",
		"print the enforced rig's monitor metrics to stderr")
	flag.Parse()
	if err := failpoint.ArmSpec(*failpoints); err != nil {
		benchio.FailUsage("-failpoints: " + err.Error())
	}

	costs, err := netperf.MeasureCosts(*packets)
	if err != nil {
		benchio.Fail("measurement failed", err)
	}
	if bf.Metrics {
		benchio.EmitMetrics("netperf enforced metrics", costs.Metrics)
	}
	conc, err := netperf.MeasureConcurrentSockets(*pairs, *packets)
	if err != nil {
		benchio.Fail("concurrent measurement failed", err)
	}
	rl, err := netperf.MeasureReload()
	if err != nil {
		benchio.Fail("reload phase failed", err)
	}
	stream, err := netperf.MeasureStreaming(*segments)
	if err != nil {
		benchio.Fail("streaming phase failed", err)
	}
	if bf.JSON {
		out, err := netperf.JSON(costs, conc, rl, stream, *packets)
		if err != nil {
			benchio.Fail("encoding report", err)
		}
		benchio.EmitReport(out)
		return
	}
	fmt.Fprintln(benchio.Stdout, "Figure 12 — netperf with stock and LXFI-enabled e1000 driver")
	fmt.Fprintln(benchio.Stdout)
	fmt.Fprint(benchio.Stdout, netperf.Format(netperf.BuildTable(costs)))
	fmt.Fprintln(benchio.Stdout)
	fmt.Fprint(benchio.Stdout, netperf.FormatConcurrent(conc))
	fmt.Fprint(benchio.Stdout, netperf.FormatReload(rl))
	fmt.Fprint(benchio.Stdout, netperf.FormatStreaming(stream))

	if *guards {
		rows, err := netperf.GuardBreakdown(*packets)
		if err != nil {
			benchio.Fail("guard breakdown failed", err)
		}
		fmt.Fprintln(benchio.Stdout)
		fmt.Fprintln(benchio.Stdout, "Figure 13 — guards per packet, UDP STREAM TX")
		fmt.Fprintln(benchio.Stdout)
		fmt.Fprint(benchio.Stdout, netperf.FormatGuards(rows))
	}
}

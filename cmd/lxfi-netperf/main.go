// Command lxfi-netperf regenerates Figure 12 (netperf throughput and
// CPU utilization over the isolated e1000 driver) and, with -guards,
// Figure 13 (the per-packet guard cost breakdown for UDP STREAM TX).
package main

import (
	"flag"
	"fmt"
	"os"

	"lxfi/internal/netperf"
)

func main() {
	packets := flag.Int("packets", 2000, "packets per measurement")
	guards := flag.Bool("guards", false, "also print the Figure 13 guard breakdown")
	flag.Parse()

	costs, err := netperf.MeasureCosts(*packets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "measurement failed:", err)
		os.Exit(1)
	}
	fmt.Println("Figure 12 — netperf with stock and LXFI-enabled e1000 driver")
	fmt.Println()
	fmt.Print(netperf.Format(netperf.BuildTable(costs)))

	if *guards {
		rows, err := netperf.GuardBreakdown(*packets)
		if err != nil {
			fmt.Fprintln(os.Stderr, "guard breakdown failed:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Println("Figure 13 — guards per packet, UDP STREAM TX")
		fmt.Println()
		fmt.Print(netperf.FormatGuards(rows))
	}
}

// Command lxfi-netperf regenerates Figure 12 (netperf throughput and
// CPU utilization over the isolated e1000 driver) and, with -guards,
// Figure 13 (the per-packet guard cost breakdown for UDP STREAM TX).
//
// With -json it emits BENCH_netperf.json: the measured per-packet path
// costs plus the concurrent socket-pair phase (one worker thread per
// econet socket pair), for the CI perf gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lxfi/internal/netperf"
)

func main() {
	packets := flag.Int("packets", 2000, "packets per measurement")
	guards := flag.Bool("guards", false, "also print the Figure 13 guard breakdown")
	asJSON := flag.Bool("json", false, "emit BENCH_netperf.json (path costs + concurrent socket phase)")
	pairs := flag.Int("pairs", 4, "socket pairs (worker threads) in the concurrent phase")
	metrics := flag.Bool("metrics", false, "print the enforced rig's monitor metrics to stderr")
	flag.Parse()

	costs, err := netperf.MeasureCosts(*packets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "measurement failed:", err)
		os.Exit(1)
	}
	// Metrics go to stderr only: the stdout JSON is the archived BENCH
	// artifact and must keep its perf-gated shape.
	if *metrics && costs.Metrics != nil {
		if out, err := json.MarshalIndent(costs.Metrics, "", "  "); err == nil {
			fmt.Fprintln(os.Stderr, string(out))
		}
	}
	if *asJSON {
		conc, err := netperf.MeasureConcurrentSockets(*pairs, *packets)
		if err != nil {
			fmt.Fprintln(os.Stderr, "concurrent measurement failed:", err)
			os.Exit(1)
		}
		out, err := netperf.JSON(costs, conc, *packets)
		if err != nil {
			fmt.Fprintln(os.Stderr, "encoding report:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Println("Figure 12 — netperf with stock and LXFI-enabled e1000 driver")
	fmt.Println()
	fmt.Print(netperf.Format(netperf.BuildTable(costs)))
	conc, err := netperf.MeasureConcurrentSockets(*pairs, *packets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "concurrent measurement failed:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Print(netperf.FormatConcurrent(conc))

	if *guards {
		rows, err := netperf.GuardBreakdown(*packets)
		if err != nil {
			fmt.Fprintln(os.Stderr, "guard breakdown failed:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Println("Figure 13 — guards per packet, UDP STREAM TX")
		fmt.Println()
		fmt.Print(netperf.FormatGuards(rows))
	}
}

// Command lxfi-fsperf measures filesystem overhead under LXFI: the
// create/write/read/stat/unlink mix over the isolated tmpfssim and
// minixsim modules, stock vs enforced — the filesystem counterpart of
// lxfi-netperf's Figure 12.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lxfi/internal/fsperf"
	"lxfi/internal/mem"
	"lxfi/internal/modules/minixsim"
)

func main() {
	files := flag.Int("files", 64, "files per measurement")
	size := flag.Uint64("size", fsperf.DefaultFileSize, "file size in bytes")
	asJSON := flag.Bool("json", false, "emit a machine-readable JSON report (the CI bench artifact)")
	metrics := flag.Bool("metrics", false, "print each enforced rig's monitor metrics to stderr")
	flag.Parse()
	if *files < 1 {
		fmt.Fprintln(os.Stderr, "-files must be at least 1")
		os.Exit(2)
	}
	if max := uint64(minixsim.MaxFilePages * mem.PageSize); *size < 1 || *size > max {
		fmt.Fprintf(os.Stderr, "-size must be between 1 and %d (the minixsim per-file extent cap)\n", max)
		os.Exit(2)
	}

	var all []*fsperf.Costs
	if !*asJSON {
		fmt.Println("fsperf — filesystem workloads with stock and LXFI-enabled modules")
		fmt.Printf("(%d files, %d bytes each; ns/op, best of several rounds)\n\n", *files, *size)
	}
	for _, kind := range []fsperf.Kind{fsperf.Tmpfs, fsperf.Minix} {
		costs, err := fsperf.MeasureCosts(kind, *files, *size)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s measurement failed: %v\n", kind, err)
			os.Exit(1)
		}
		all = append(all, costs)
		if !*asJSON {
			fmt.Print(fsperf.Format(costs))
			fmt.Println()
		}
		// Metrics go to stderr only: the stdout JSON is the archived
		// BENCH artifact and must keep its perf-gated shape.
		if *metrics && costs.Metrics != nil {
			if out, err := json.MarshalIndent(costs.Metrics, "", "  "); err == nil {
				fmt.Fprintf(os.Stderr, "# %s enforced metrics\n%s\n", kind, out)
			}
		}
	}
	conc, err := fsperf.MeasureConcurrency(*files, *size)
	if err != nil {
		fmt.Fprintf(os.Stderr, "concurrency measurement failed: %v\n", err)
		os.Exit(1)
	}
	if !*asJSON {
		fmt.Print(fsperf.FormatConcurrency(conc))
	}
	if *asJSON {
		out, err := fsperf.JSON(all, conc, *files, *size)
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding report: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	}
}

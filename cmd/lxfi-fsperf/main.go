// Command lxfi-fsperf measures filesystem overhead under LXFI: the
// create/write/read/stat/unlink mix over the isolated tmpfssim and
// minixsim modules, stock vs enforced — the filesystem counterpart of
// lxfi-netperf's Figure 12 — plus the multi-mount concurrency phase and
// the hot-reload-under-live-traffic phase.
package main

import (
	"flag"
	"fmt"

	"lxfi/internal/benchio"
	"lxfi/internal/failpoint"
	"lxfi/internal/fsperf"
	"lxfi/internal/mem"
	"lxfi/internal/modules/minixsim"
)

func main() {
	files := flag.Int("files", 64, "files per measurement")
	size := flag.Uint64("size", fsperf.DefaultFileSize, "file size in bytes")
	failpoints := flag.String("failpoints", "",
		"arm failpoints for the run, LXFI_FAILPOINTS syntax (e.g. \"blockdev.write_sector=every(100)->delay(50us)\")")
	bf := benchio.Bind(
		"emit a machine-readable JSON report (the CI bench artifact)",
		"print each enforced rig's monitor metrics to stderr")
	flag.Parse()
	if *files < 1 {
		benchio.FailUsage("-files must be at least 1")
	}
	if err := failpoint.ArmSpec(*failpoints); err != nil {
		benchio.FailUsage("-failpoints: " + err.Error())
	}
	if max := uint64(minixsim.MaxFilePages * mem.PageSize); *size < 1 || *size > max {
		benchio.FailUsage(fmt.Sprintf(
			"-size must be between 1 and %d (the minixsim per-file extent cap)", max))
	}

	var all []*fsperf.Costs
	var rls []*fsperf.ReloadCosts
	if !bf.JSON {
		fmt.Fprintln(benchio.Stdout, "fsperf — filesystem workloads with stock and LXFI-enabled modules")
		fmt.Fprintf(benchio.Stdout, "(%d files, %d bytes each; ns/op, best of several rounds)\n\n", *files, *size)
	}
	for _, kind := range []fsperf.Kind{fsperf.Tmpfs, fsperf.Minix} {
		costs, err := fsperf.MeasureCosts(kind, *files, *size)
		if err != nil {
			benchio.Fail(fmt.Sprintf("%s measurement failed", kind), err)
		}
		all = append(all, costs)
		rl, err := fsperf.MeasureReload(kind, *size)
		if err != nil {
			benchio.Fail(fmt.Sprintf("%s reload phase failed", kind), err)
		}
		rls = append(rls, rl)
		if !bf.JSON {
			fmt.Fprint(benchio.Stdout, fsperf.Format(costs))
			fmt.Fprint(benchio.Stdout, fsperf.FormatReload(rl))
			fmt.Fprintln(benchio.Stdout)
		}
		if bf.Metrics {
			benchio.EmitMetrics(fmt.Sprintf("%s enforced metrics", kind), costs.Metrics)
		}
	}
	jrn, err := fsperf.MeasureJournal(*files)
	if err != nil {
		benchio.Fail("journal phase failed", err)
	}
	conc, err := fsperf.MeasureConcurrency(*files, *size)
	if err != nil {
		benchio.Fail("concurrency measurement failed", err)
	}
	if !bf.JSON {
		fmt.Fprint(benchio.Stdout, fsperf.FormatJournal(jrn))
		fmt.Fprint(benchio.Stdout, fsperf.FormatConcurrency(conc))
		return
	}
	out, err := fsperf.JSON(all, conc, rls, []*fsperf.JournalCosts{jrn}, *files, *size)
	if err != nil {
		benchio.Fail("encoding report", err)
	}
	benchio.EmitReport(out)
}

// Command lxfi-microbench regenerates Figure 11: the SFI
// microbenchmarks (hotlist, lld, MD5) run as isolated modules, with
// measured slowdowns and statically-computed code-size deltas.
//
// With -crossings it instead runs the capability-crossing engine
// benchmark (cold/cached/contended checks, the revoke storm, and the
// hot-reload crossing latency); with -json the crossing report is
// emitted in the BENCH_crossings.json shape CI archives and perf-gates.
package main

import (
	"flag"
	"fmt"

	"lxfi/internal/benchio"
	"lxfi/internal/failpoint"
	"lxfi/internal/microbench"
)

func main() {
	iters := flag.Int("iters", 5000, "operations per benchmark")
	crossings := flag.Bool("crossings", false, "run the crossing-engine phases instead of Figure 11")
	failpoints := flag.String("failpoints", "",
		"arm failpoints for the run, LXFI_FAILPOINTS syntax (e.g. \"netstack.xmit_batch=prob(0.01)->error\")")
	bf := benchio.Bind(
		"emit the machine-readable crossing report (requires -crossings)",
		"print the enforced run's monitor metrics to stderr (requires -crossings)")
	flag.Parse()
	if err := failpoint.ArmSpec(*failpoints); err != nil {
		benchio.FailUsage("-failpoints: " + err.Error())
	}

	if bf.Metrics && !*crossings {
		benchio.FailUsage("-metrics requires -crossings")
	}
	if *crossings {
		rows, snap, err := microbench.MeasureCrossingsWithMetrics(*iters)
		if err != nil {
			benchio.Fail("crossing benchmark failed", err)
		}
		if bf.Metrics {
			benchio.EmitMetrics("crossings enforced metrics", snap)
		}
		if bf.JSON {
			out, err := microbench.CrossingsJSON(rows, *iters)
			if err != nil {
				benchio.Fail("encoding report", err)
			}
			benchio.EmitReport(out)
			return
		}
		fmt.Fprintln(benchio.Stdout, "Crossing engine — capability checks, stock vs LXFI")
		fmt.Fprintln(benchio.Stdout)
		fmt.Fprint(benchio.Stdout, microbench.FormatCrossings(rows))
		return
	}
	if bf.JSON {
		benchio.FailUsage("-json requires -crossings")
	}

	rs, err := microbench.RunAll(*iters)
	if err != nil {
		benchio.Fail("microbench failed", err)
	}
	fmt.Fprintln(benchio.Stdout, "Figure 11 — SFI microbenchmarks under LXFI")
	fmt.Fprintln(benchio.Stdout)
	fmt.Fprint(benchio.Stdout, microbench.Format(rs))
}

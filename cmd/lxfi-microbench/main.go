// Command lxfi-microbench regenerates Figure 11: the SFI
// microbenchmarks (hotlist, lld, MD5) run as isolated modules, with
// measured slowdowns and statically-computed code-size deltas.
package main

import (
	"flag"
	"fmt"
	"os"

	"lxfi/internal/microbench"
)

func main() {
	iters := flag.Int("iters", 5000, "operations per benchmark")
	flag.Parse()

	rs, err := microbench.RunAll(*iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "microbench failed:", err)
		os.Exit(1)
	}
	fmt.Println("Figure 11 — SFI microbenchmarks under LXFI")
	fmt.Println()
	fmt.Print(microbench.Format(rs))
}

// Command lxfi-microbench regenerates Figure 11: the SFI
// microbenchmarks (hotlist, lld, MD5) run as isolated modules, with
// measured slowdowns and statically-computed code-size deltas.
//
// With -crossings it instead runs the capability-crossing engine
// benchmark (cold/cached/contended checks and the revoke storm); with
// -json the crossing report is emitted in the BENCH_crossings.json
// shape CI archives and perf-gates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lxfi/internal/core"
	"lxfi/internal/microbench"
)

// printMetrics writes the monitor-metrics snapshot to stderr — never
// stdout, so it cannot end up inside an archived BENCH report.
func printMetrics(m *core.MetricsSnapshot) {
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "encoding metrics:", err)
		return
	}
	fmt.Fprintln(os.Stderr, string(out))
}

func main() {
	iters := flag.Int("iters", 5000, "operations per benchmark")
	crossings := flag.Bool("crossings", false, "run the crossing-engine phases instead of Figure 11")
	asJSON := flag.Bool("json", false, "emit the machine-readable crossing report (requires -crossings)")
	metrics := flag.Bool("metrics", false, "print the enforced run's monitor metrics to stderr (requires -crossings)")
	flag.Parse()

	if *metrics && !*crossings {
		fmt.Fprintln(os.Stderr, "-metrics requires -crossings")
		os.Exit(2)
	}
	if *crossings {
		rows, snap, err := microbench.MeasureCrossingsWithMetrics(*iters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crossing benchmark failed:", err)
			os.Exit(1)
		}
		if *metrics && snap != nil {
			printMetrics(snap)
		}
		if *asJSON {
			out, err := microbench.CrossingsJSON(rows, *iters)
			if err != nil {
				fmt.Fprintln(os.Stderr, "encoding report:", err)
				os.Exit(1)
			}
			fmt.Println(string(out))
			return
		}
		fmt.Println("Crossing engine — capability checks, stock vs LXFI")
		fmt.Println()
		fmt.Print(microbench.FormatCrossings(rows))
		return
	}
	if *asJSON {
		fmt.Fprintln(os.Stderr, "-json requires -crossings")
		os.Exit(2)
	}

	rs, err := microbench.RunAll(*iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "microbench failed:", err)
		os.Exit(1)
	}
	fmt.Println("Figure 11 — SFI microbenchmarks under LXFI")
	fmt.Println()
	fmt.Print(microbench.Format(rs))
}

// Command lxfi-microbench regenerates Figure 11: the SFI
// microbenchmarks (hotlist, lld, MD5) run as isolated modules, with
// measured slowdowns and statically-computed code-size deltas.
//
// With -crossings it instead runs the capability-crossing engine
// benchmark (cold/cached/contended checks and the revoke storm); with
// -json the crossing report is emitted in the BENCH_crossings.json
// shape CI archives and perf-gates.
package main

import (
	"flag"
	"fmt"
	"os"

	"lxfi/internal/microbench"
)

func main() {
	iters := flag.Int("iters", 5000, "operations per benchmark")
	crossings := flag.Bool("crossings", false, "run the crossing-engine phases instead of Figure 11")
	asJSON := flag.Bool("json", false, "emit the machine-readable crossing report (requires -crossings)")
	flag.Parse()

	if *crossings {
		rows, err := microbench.MeasureCrossings(*iters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crossing benchmark failed:", err)
			os.Exit(1)
		}
		if *asJSON {
			out, err := microbench.CrossingsJSON(rows, *iters)
			if err != nil {
				fmt.Fprintln(os.Stderr, "encoding report:", err)
				os.Exit(1)
			}
			fmt.Println(string(out))
			return
		}
		fmt.Println("Crossing engine — capability checks, stock vs LXFI")
		fmt.Println()
		fmt.Print(microbench.FormatCrossings(rows))
		return
	}
	if *asJSON {
		fmt.Fprintln(os.Stderr, "-json requires -crossings")
		os.Exit(2)
	}

	rs, err := microbench.RunAll(*iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "microbench failed:", err)
		os.Exit(1)
	}
	fmt.Println("Figure 11 — SFI microbenchmarks under LXFI")
	fmt.Println()
	fmt.Print(microbench.Format(rs))
}

// Command lxfi-annots regenerates Figure 9: the annotation effort per
// module, computed from the live annotation database after booting all
// ten modules.
package main

import (
	"fmt"
	"os"

	"lxfi/internal/annotdb"
	"lxfi/internal/core"
)

func main() {
	sys, err := annotdb.BootAll(core.Enforce)
	if err != nil {
		fmt.Fprintln(os.Stderr, "boot failed:", err)
		os.Exit(1)
	}
	fmt.Println("Figure 9 — annotated functions and function pointers per module")
	fmt.Println()
	fmt.Print(annotdb.Build(sys).Format())
	fmt.Println()
	fmt.Println("Annotated kernel exports:")
	for _, f := range annotdb.AnnotatedKernelFuncs(sys) {
		fn, _ := sys.FuncByName(f)
		fmt.Printf("  %-20s %s\n", f, fn.Annot)
	}
}

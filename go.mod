module lxfi

go 1.22
